"""Random trial generation: one seed → one fully declarative trial.

A :class:`TrialSpec` is everything a fuzz trial needs to run — protocol
choice and knobs, topology parameters, workload, a randomized
:class:`~repro.chaos.plan.ChaosSpec`, and the delivery horizon — and
nothing else: no live objects, no callbacks, no ambient state.  That
makes a trial (a) picklable, so campaigns fan out over
:mod:`repro.exec` workers, (b) JSON-serializable, so a failing trial
becomes a self-contained repro artifact (:mod:`repro.fuzz.artifact`),
and (c) byte-identically replayable, because the simulation it
describes is a pure function of the spec.

:func:`generate_trial` derives every choice from one ``random.Random``
seeded with the trial seed (never global randomness, never the
simulator's RNG), so generation is deterministic across processes and
interpreter runs.  Fault targets are drawn by *name*; the generator
builds a scratch copy of the topology first to learn which hosts,
servers, and links exist — topology construction is itself
deterministic per seed, so the scratch copy and the replayed trial
always agree.

All injected faults respect the :class:`ChaosSpec` heal-by guarantee by
construction: every window ends before the horizon, so a trial that
never delivers its stream *after* healing is a genuine liveness
failure, not an artifact of a still-broken network.  Adversarial host
personas (``FuzzOptions.max_adversaries > 0``) are the deliberate
exception — a Byzantine host stays Byzantine through the heal — so
trials with adversaries take their delivery verdict over the *correct*
hosts only (:mod:`repro.fuzz.properties`).
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import List, Tuple

from ..chaos import (
    PERSONAS,
    AdversarySpec,
    ChaosSpec,
    HostChurnSpec,
    HostOutageSpec,
    LinkChurnSpec,
    LinkOutageSpec,
    PartitionSpec,
    PartitionWindowSpec,
    PacketFaultSpec,
    ServerOutageSpec,
)
from ..net import BuiltTopology, wan_of_lans
from ..scenarios.partitions import WindowSpec
from ..sim import Simulator

#: fuzz trials use the sweep-sized data messages so random workloads
#: cannot saturate 56 kbit/s trunks into a trivial congestion collapse
FUZZ_DATA_BITS = 4_000


@dataclass(frozen=True)
class TopologySpec:
    """A ``wan_of_lans`` instance, by its parameters."""

    clusters: int
    hosts_per_cluster: int
    backbone: str = "line"


@dataclass(frozen=True)
class WorkloadSpec:
    """The broadcast stream the source generates."""

    n: int
    interval: float
    start_at: float = 2.0


@dataclass(frozen=True)
class FuzzOptions:
    """Campaign-level knobs bounding the space trials are drawn from."""

    #: protocol under test: ``"tree"`` (the paper's) or ``"basic"``
    protocol: str = "tree"
    #: probability a tree trial runs the adaptive control plane
    adaptive_frac: float = 0.5
    max_clusters: int = 3
    max_hosts_per_cluster: int = 2
    min_fault_events: int = 6
    max_fault_events: int = 14
    #: eventual-delivery deadline, measured from t=0 (well past heal-by)
    horizon: float = 300.0
    #: up to this many adversarial host personas per trial (0, the
    #: default, draws nothing and generates byte-identically to builds
    #: without the adversary model; adversary draws always come *after*
    #: every other draw, so enabling them never perturbs the rest of a
    #: trial)
    max_adversaries: int = 0
    #: personas adversaries are drawn from
    personas: Tuple[str, ...] = PERSONAS

    def __post_init__(self) -> None:
        if self.protocol not in ("tree", "basic"):
            raise ValueError(f"unknown protocol {self.protocol!r}")
        if not 0.0 <= self.adaptive_frac <= 1.0:
            raise ValueError("adaptive_frac must be a probability")
        if self.max_clusters < 2 or self.max_hosts_per_cluster < 1:
            raise ValueError("need at least 2 clusters and 1 host each")
        if not 1 <= self.min_fault_events <= self.max_fault_events:
            raise ValueError("need 1 <= min_fault_events <= max_fault_events")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.max_adversaries < 0:
            raise ValueError("max_adversaries must be >= 0")
        for persona in self.personas:
            if persona not in PERSONAS:
                raise ValueError(f"unknown persona {persona!r}")


@dataclass(frozen=True)
class TrialSpec:
    """One complete, self-contained fuzz trial."""

    seed: int
    protocol: str
    adaptive: bool
    crash_stable_lag: int
    topology: TopologySpec
    workload: WorkloadSpec
    chaos: ChaosSpec
    horizon: float
    stable_window: float = 20.0


def build_topology(spec: TrialSpec) -> Tuple[Simulator, BuiltTopology]:
    """Construct the trial's simulator and topology (deterministic)."""
    sim = Simulator(seed=spec.seed)
    built = wan_of_lans(
        sim,
        clusters=spec.topology.clusters,
        hosts_per_cluster=spec.topology.hosts_per_cluster,
        backbone=spec.topology.backbone,
    )
    return sim, built


@dataclass
class _Names:
    """What exists in a topology: the generator's and shrinker's map."""

    source: str
    victims: List[str] = field(default_factory=list)  #: non-source hosts
    servers: List[str] = field(default_factory=list)
    links: List[Tuple[str, str]] = field(default_factory=list)
    #: per-cluster node groups (server + its hosts), for partitions
    groups: List[Tuple[str, ...]] = field(default_factory=list)


def topology_names(topology: TopologySpec, seed: int) -> _Names:
    """Learn the node/link names a (topology, seed) pair will produce."""
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=topology.clusters,
                        hosts_per_cluster=topology.hosts_per_cluster,
                        backbone=topology.backbone)
    source = str(built.source)
    names = _Names(source=source)
    names.victims = [str(h) for h in built.hosts if str(h) != source]
    names.servers = sorted({f"s{c}" for c in range(topology.clusters)})
    names.links = [(a, b) for a, b in built.backbone]
    for host in built.hosts:
        server = built.network.server_of(host)
        if server is not None:
            names.links.append((str(host), server))
    for index, cluster in enumerate(built.clusters):
        names.groups.append(tuple(sorted(
            [f"s{index}"] + [str(h) for h in cluster])))
    return names


def _window(rng: random.Random, heal_by: float) -> Tuple[float, float]:
    """A fault window [start, end) ending comfortably before heal_by."""
    start = round(rng.uniform(1.0, heal_by * 0.6), 3)
    duration = round(rng.uniform(1.0, min(10.0, heal_by - start - 0.5)), 3)
    return start, start + duration


def _split_groups(rng: random.Random,
                  groups: List[Tuple[str, ...]]) -> Tuple[Tuple[str, ...], ...]:
    """Split cluster groups into two sides, both non-empty."""
    cut = rng.randint(1, len(groups) - 1)
    shuffled = list(range(len(groups)))
    rng.shuffle(shuffled)
    side_a = sorted(shuffled[:cut])
    side_b = sorted(shuffled[cut:])
    flatten = lambda idxs: tuple(
        name for i in idxs for name in groups[i])
    return (flatten(side_a), flatten(side_b))


#: event kinds and their draw weights; order matters for determinism
_EVENT_KINDS: Tuple[Tuple[str, float], ...] = (
    ("host_outage", 0.30),
    ("link_outage", 0.20),
    ("server_outage", 0.10),
    ("partition", 0.10),
    ("window_partition", 0.05),
    ("packet_fault", 0.15),
    ("host_churn", 0.05),
    ("link_churn", 0.05),
)


def generate_trial(trial_seed: int,
                   options: FuzzOptions = FuzzOptions()) -> TrialSpec:
    """Draw one :class:`TrialSpec` from ``trial_seed`` (pure function)."""
    rng = random.Random(trial_seed)
    clusters = rng.randint(2, options.max_clusters)
    backbone = rng.choice(("line", "ring", "star", "tree"))
    if clusters == 2 and backbone == "ring":
        backbone = "line"  # a two-cluster ring would duplicate the trunk
    topology = TopologySpec(
        clusters=clusters,
        hosts_per_cluster=rng.randint(1, options.max_hosts_per_cluster),
        backbone=backbone,
    )
    names = topology_names(topology, trial_seed)
    workload = WorkloadSpec(n=rng.randint(5, 12),
                            interval=rng.choice((0.5, 1.0, 2.0)))
    heal_by = round(rng.uniform(25.0, 40.0), 3)

    host_outages: List[HostOutageSpec] = []
    link_outages: List[LinkOutageSpec] = []
    server_outages: List[ServerOutageSpec] = []
    partitions: List[PartitionSpec] = []
    window_partitions: List[PartitionWindowSpec] = []
    packet_faults: List[PacketFaultSpec] = []
    host_churn: List[HostChurnSpec] = []
    link_churn: List[LinkChurnSpec] = []

    kinds = [kind for kind, _ in _EVENT_KINDS]
    weights = [weight for _, weight in _EVENT_KINDS]
    count = rng.randint(options.min_fault_events, options.max_fault_events)
    for _ in range(count):
        kind = rng.choices(kinds, weights=weights)[0]
        if kind == "host_outage":
            start, end = _window(rng, heal_by)
            host_outages.append(HostOutageSpec(
                rng.choice(names.victims), start, end))
        elif kind == "link_outage":
            start, end = _window(rng, heal_by)
            a, b = rng.choice(names.links)
            link_outages.append(LinkOutageSpec(a, b, start, end))
        elif kind == "server_outage":
            start, end = _window(rng, heal_by)
            server_outages.append(ServerOutageSpec(
                rng.choice(names.servers), start, end))
        elif kind == "partition":
            start, end = _window(rng, heal_by)
            partitions.append(PartitionSpec(
                _split_groups(rng, names.groups), start, end))
        elif kind == "window_partition":
            first_open = round(rng.uniform(2.0, 6.0), 3)
            window = WindowSpec(period=round(rng.uniform(6.0, 10.0), 3),
                                width=round(rng.uniform(1.5, 3.0), 3),
                                first_open=first_open)
            until = round(heal_by - rng.uniform(1.0, 3.0), 3)
            window_partitions.append(PartitionWindowSpec(
                _split_groups(rng, names.groups), window, until))
        elif kind == "packet_fault":
            start, end = _window(rng, heal_by)
            flavor = rng.choice(("corrupt", "duplicate", "delay", "replay"))
            packet_faults.append(PacketFaultSpec(
                dst=rng.choice(["*"] + names.victims),
                start=start, end=end,
                corrupt_prob=(round(rng.uniform(0.05, 0.25), 3)
                              if flavor == "corrupt" else 0.0),
                dup_prob=(round(rng.uniform(0.05, 0.25), 3)
                          if flavor == "duplicate" else 0.0),
                delay_prob=(round(rng.uniform(0.1, 0.4), 3)
                            if flavor == "delay" else 0.0),
                delay=round(rng.uniform(0.2, 1.0), 3),
                replay_prob=(round(rng.uniform(0.02, 0.12), 3)
                             if flavor == "replay" else 0.0),
            ))
        elif kind == "host_churn":
            sample = rng.sample(names.victims,
                                rng.randint(1, len(names.victims)))
            host_churn.append(HostChurnSpec(
                tuple(sorted(sample)),
                mean_up=round(rng.uniform(6.0, 15.0), 3),
                mean_down=round(rng.uniform(1.0, 4.0), 3)))
        else:  # link_churn
            sample = rng.sample(names.links, rng.randint(1, len(names.links)))
            link_churn.append(LinkChurnSpec(
                tuple(sorted(sample)),
                mean_up=round(rng.uniform(6.0, 15.0), 3),
                mean_down=round(rng.uniform(1.0, 4.0), 3)))

    chaos = ChaosSpec(
        heal_by=heal_by,
        host_outages=tuple(host_outages),
        link_outages=tuple(link_outages),
        server_outages=tuple(server_outages),
        partitions=tuple(partitions),
        window_partitions=tuple(window_partitions),
        host_churn=tuple(host_churn),
        link_churn=tuple(link_churn),
        packet_faults=tuple(packet_faults),
    )
    adaptive = (options.protocol == "tree"
                and rng.random() < options.adaptive_frac)
    crash_stable_lag = rng.randint(0, 2)
    # Adversary draws come LAST, gated on the option: with the default
    # max_adversaries=0 this branch consumes no randomness, so existing
    # campaigns generate byte-identical trials.
    if options.max_adversaries > 0:
        k = rng.randint(0, min(options.max_adversaries, len(names.victims)))
        adversaries = []
        for host in sorted(rng.sample(names.victims, k)):
            adversaries.append(AdversarySpec(
                host=host,
                persona=rng.choice(options.personas),
                start=round(rng.uniform(0.0, heal_by * 0.5), 3),
                lie_ahead=rng.randint(1, 5),
                drop_frac=round(rng.uniform(0.5, 1.0), 3),
                replay_interval=round(rng.uniform(2.0, 8.0), 3)))
        if adversaries:
            chaos = dataclasses.replace(chaos,
                                        adversaries=tuple(adversaries))
    return TrialSpec(
        seed=trial_seed,
        protocol=options.protocol,
        adaptive=adaptive,
        crash_stable_lag=crash_stable_lag,
        topology=topology,
        workload=workload,
        chaos=chaos,
        horizon=options.horizon,
    )
