"""Fault-schedule shrinking: delta-debug a failure to a minimal repro.

A raw failing trial carries a dozen fault events, a multi-cluster
topology, and a long workload; most of it is noise.  :func:`shrink_trial`
minimizes the trial while **preserving the violation**: a candidate is
accepted only when re-running it reproduces the original failure class
(``stable_violation`` or ``no_eventual_delivery``).  Passes, in order:

1. **ddmin over fault events** — the flattened fault-event list (every
   outage, partition, packet rule, churn entry, and adversary persona
   across all nine ``ChaosSpec`` fields) is reduced with classic delta
   debugging, including the try-zero-events probe that exposes
   chaos-independent bugs.  Adversary-caused failures thereby shrink to
   the minimal adversary event sequence: benign faults that merely rode
   along are deleted first, leaving the persona schedule that actually
   breaks the invariant.
2. **Window shortening** — surviving outage/partition/packet windows
   are repeatedly halved while the failure persists.
3. **Workload shrinking** — the stream length is halved toward 1.
4. **Topology shrinking** — hosts-per-cluster, then cluster count, are
   reduced; fault events naming nodes or links that no longer exist are
   dropped (the re-run then revalidates that the *remaining* schedule
   still fails).
5. **Horizon tightening** — ``heal_by`` is pulled down to just past the
   last surviving fault.

Shrinking invariants (DESIGN.md §11): every candidate is a valid
:class:`TrialSpec` — windows still end before ``heal_by``, so shrunk
repros keep the heal-by guarantee — and the whole search is a pure
function of the input (fixed pass order, no randomness), so shrinking
the same failure twice yields the identical minimal repro.  The search
is budgeted: at most ``max_evals`` trial re-runs, each a full
deterministic simulation.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..chaos import ChaosSpec
from .generator import TopologySpec, TrialSpec, WorkloadSpec, topology_names
from .properties import TrialOutcome, run_trial

#: the ChaosSpec fields that hold discrete fault events, in canonical order
EVENT_FIELDS: Tuple[str, ...] = (
    "host_outages", "link_outages", "server_outages", "partitions",
    "window_partitions", "host_churn", "link_churn", "packet_faults",
    "adversaries",
)

#: one flattened fault event: (chaos field name, event value)
Event = Tuple[str, object]


def fault_events(chaos: ChaosSpec) -> List[Event]:
    """Flatten a spec's fault schedule into one canonical event list."""
    return [(name, event) for name in EVENT_FIELDS
            for event in getattr(chaos, name)]


def fault_event_count(chaos: ChaosSpec) -> int:
    return sum(len(getattr(chaos, name)) for name in EVENT_FIELDS)


def rebuild_chaos(chaos: ChaosSpec, events: List[Event],
                  heal_by: Optional[float] = None) -> ChaosSpec:
    """A copy of ``chaos`` holding exactly ``events`` (may raise ValueError)."""
    grouped = {name: [] for name in EVENT_FIELDS}
    for name, event in events:
        grouped[name].append(event)
    return dataclasses.replace(
        chaos, heal_by=heal_by if heal_by is not None else chaos.heal_by,
        **{name: tuple(values) for name, values in grouped.items()})


@dataclass
class ShrinkResult:
    """The minimal reproducer and how we got there."""

    spec: TrialSpec
    outcome: TrialOutcome
    original_events: int
    events: int
    evals: int

    @property
    def ratio(self) -> float:
        """Shrunk / original fault-event count (1.0 = no shrinking)."""
        if self.original_events == 0:
            return 1.0
        return self.events / self.original_events


class _Budget:
    """Counts trial evaluations; the search stops when exhausted."""

    def __init__(self, max_evals: int) -> None:
        self.max_evals = max_evals
        self.evals = 0

    @property
    def exhausted(self) -> bool:
        return self.evals >= self.max_evals


def _chunks(items: List, n: int) -> List[List]:
    """Split into n near-equal chunks (n <= len(items))."""
    size, extra = divmod(len(items), n)
    out, at = [], 0
    for i in range(n):
        width = size + (1 if i < extra else 0)
        out.append(items[at:at + width])
        at += width
    return [c for c in out if c]


def _ddmin(events: List[Event], test: Callable[[List[Event]], bool],
           budget: _Budget) -> List[Event]:
    """Classic ddmin: find a (1-)minimal failing subset of ``events``."""
    if not events or budget.exhausted:
        return events
    if test([]):  # the failure does not need chaos at all
        return []
    granularity = 2
    while len(events) >= 2 and not budget.exhausted:
        chunks = _chunks(events, min(granularity, len(events)))
        reduced = False
        for i in range(len(chunks)):
            candidate = [e for j, chunk in enumerate(chunks)
                         for e in chunk if j != i]
            if test(candidate):
                events = candidate
                granularity = max(2, granularity - 1)
                reduced = True
                break
            if budget.exhausted:
                return events
        if not reduced:
            if granularity >= len(events):
                break
            granularity = min(len(events), granularity * 2)
    return events


def _halved_window(event: object) -> Optional[object]:
    """The same event with its time window halved, or None if minimal."""
    start = getattr(event, "start", None)
    end = getattr(event, "end", None)
    if start is None or end is None or end == float("inf"):
        return None
    duration = end - start
    if duration <= 1.0:
        return None
    return dataclasses.replace(event, end=round(start + duration / 2, 6))


def _valid_events(events: List[Event], topology: TopologySpec,
                  seed: int) -> List[Event]:
    """Drop events that reference nodes absent from ``topology``."""
    names = topology_names(topology, seed)
    nodes = {names.source, *names.victims, *names.servers}
    links = {frozenset(link) for link in names.links}
    kept: List[Event] = []
    for field_name, event in events:
        if field_name == "host_outages":
            if event.host in names.victims:
                kept.append((field_name, event))
        elif field_name == "link_outages":
            if frozenset((event.a, event.b)) in links:
                kept.append((field_name, event))
        elif field_name == "server_outages":
            if event.server in names.servers:
                kept.append((field_name, event))
        elif field_name in ("partitions", "window_partitions"):
            groups = tuple(tuple(n for n in group if n in nodes)
                           for group in event.groups)
            groups = tuple(g for g in groups if g)
            if len(groups) >= 2:
                kept.append((field_name,
                             dataclasses.replace(event, groups=groups)))
        elif field_name == "host_churn":
            hosts = tuple(h for h in event.hosts if h in names.victims)
            if hosts:
                kept.append((field_name,
                             dataclasses.replace(event, hosts=hosts)))
        elif field_name == "link_churn":
            churned = tuple(link for link in event.links
                            if frozenset(link) in links)
            if churned:
                kept.append((field_name,
                             dataclasses.replace(event, links=churned)))
        elif field_name == "adversaries":
            if event.host in names.victims:
                kept.append((field_name, event))
        else:  # packet_faults
            if ((event.dst == "*" or event.dst in names.victims
                 or event.dst == names.source)
                    and (event.src == "*" or event.src in nodes)):
                kept.append((field_name, event))
    return kept


def shrink_trial(spec: TrialSpec, outcome: TrialOutcome,
                 max_evals: int = 150) -> ShrinkResult:
    """Minimize ``spec`` while preserving ``outcome``'s failure class."""
    if not outcome.failed:
        raise ValueError("can only shrink a failing trial "
                         f"(got {outcome.classification!r})")
    target = outcome.classification
    budget = _Budget(max_evals)
    best_spec = spec
    best_outcome = outcome
    original_events = fault_event_count(spec.chaos)

    def attempt(candidate: TrialSpec) -> bool:
        """Run a candidate; adopt it when the failure class survives."""
        nonlocal best_spec, best_outcome
        if budget.exhausted:
            return False
        budget.evals += 1
        try:
            result = run_trial(candidate)
        except Exception:  # a malformed candidate is just a rejection
            return False
        if result.classification != target:
            return False
        best_spec, best_outcome = candidate, result
        return True

    def with_events(events: List[Event], base: Optional[TrialSpec] = None
                    ) -> Optional[TrialSpec]:
        source = base if base is not None else best_spec
        try:
            return dataclasses.replace(
                source, chaos=rebuild_chaos(source.chaos, events))
        except ValueError:
            return None

    # Pass 1: ddmin over the flattened fault-event list.
    def event_test(events: List[Event]) -> bool:
        candidate = with_events(events)
        return candidate is not None and attempt(candidate)

    _ddmin(fault_events(best_spec.chaos), event_test, budget)

    # Pass 2: halve surviving windows until no halving reproduces.
    improving = True
    while improving and not budget.exhausted:
        improving = False
        events = fault_events(best_spec.chaos)
        for index, (field_name, event) in enumerate(events):
            shorter = _halved_window(event)
            if shorter is None:
                continue
            trimmed = list(events)
            trimmed[index] = (field_name, shorter)
            candidate = with_events(trimmed)
            if candidate is not None and attempt(candidate):
                improving = True
                break  # event list changed; restart the scan

    # Pass 3: halve the workload toward a single message.
    while best_spec.workload.n > 1 and not budget.exhausted:
        n = max(1, best_spec.workload.n // 2)
        candidate = dataclasses.replace(
            best_spec, workload=dataclasses.replace(best_spec.workload, n=n))
        if not attempt(candidate):
            break

    # Pass 4: shrink the topology, dropping faults that lose their target.
    improving = True
    while improving and not budget.exhausted:
        improving = False
        topology = best_spec.topology
        candidates: List[TopologySpec] = []
        if topology.hosts_per_cluster > 1:
            candidates.append(dataclasses.replace(
                topology, hosts_per_cluster=topology.hosts_per_cluster - 1))
        if topology.clusters > 2:
            fewer = topology.clusters - 1
            candidates.append(dataclasses.replace(
                topology, clusters=fewer,
                # a two-cluster ring would duplicate its single trunk
                backbone=("line" if fewer == 2
                          and topology.backbone == "ring"
                          else topology.backbone)))
        for smaller in candidates:
            events = _valid_events(fault_events(best_spec.chaos), smaller,
                                   best_spec.seed)
            base = dataclasses.replace(best_spec, topology=smaller)
            candidate = with_events(events, base=base)
            if candidate is not None and attempt(candidate):
                improving = True
                break

    # Pass 5: pull heal_by down to just past the last surviving fault.
    if not budget.exhausted:
        events = fault_events(best_spec.chaos)
        ends = [getattr(e, "end", getattr(e, "until", None))
                for _, e in events]
        ends = [end for end in ends if end is not None and end != float("inf")]
        if events and ends and not any(
                name in ("host_churn", "link_churn") for name, _ in events):
            tight = round(max(ends) + 1.0, 6)
            if tight < best_spec.chaos.heal_by:
                try:
                    chaos = rebuild_chaos(best_spec.chaos, events,
                                          heal_by=tight)
                except ValueError:
                    chaos = None
                if chaos is not None:
                    attempt(dataclasses.replace(best_spec, chaos=chaos))

    return ShrinkResult(
        spec=best_spec, outcome=best_outcome,
        original_events=original_events,
        events=fault_event_count(best_spec.chaos),
        evals=budget.evals)
