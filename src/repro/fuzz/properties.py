"""Trial execution and property checking: spec in, verdict out.

:func:`run_trial` is the single place a :class:`TrialSpec` becomes a
live simulation.  It deploys the chosen protocol over the generated
topology, arms the :class:`~repro.verify.monitor.InvariantMonitor` (tree
protocol only — the basic algorithm has no parent graph to check),
starts the :class:`~repro.chaos.plan.ChaosPlan`, streams the workload,
lets the chaos window play out, and then gives the protocol until the
trial horizon to finish delivering.  The verdict is one of three
classes, checked in severity order:

* ``stable_violation`` — a §4.3 safety invariant (harmful parent cycle,
  INFO dominance) persisted past the monitor's stable window, *or* was
  still unresolved when the run ended;
* ``no_eventual_delivery`` — the network healed, the horizon passed,
  and some host still misses part of the stream: the paper's core
  liveness claim failed;
* ``clean`` — everything delivered, no stable violation.

When the trial's chaos includes adversarial host personas
(``ChaosSpec.adversaries``), the verdict is taken over the **correct
hosts only**: an adversary that refuses to deliver to *itself* is not
a protocol failure, but a correct host that misses messages — or a
stable violation among correct hosts — is.  Stable violations that
involve the adversary hosts are reported separately as *contained*
(:mod:`repro.verify.containment`): real damage, but damage that
stopped at the misbehaving hosts.

Every outcome carries a **delivery signature**: a SHA-256 digest over
the canonical JSON of every host's delivery records (sequence, time,
supplier, gap-fill flag) — adversaries included, since replay must be
byte-exact.  Two runs of the same spec must produce the same signature
byte-for-byte — that is the replay guarantee repro artifacts (and the
serial == parallel parity tests) assert.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import List, Tuple

from ..baseline import BasicBroadcastSystem, BasicConfig
from ..chaos import ChaosPlan
from ..core import BroadcastSystem, ProtocolConfig
from ..verify import InvariantMonitor, span_hosts
from .generator import FUZZ_DATA_BITS, TrialSpec, build_topology

CLEAN = "clean"
STABLE_VIOLATION = "stable_violation"
NO_EVENTUAL_DELIVERY = "no_eventual_delivery"

#: verdicts that make a trial a *failure* worth shrinking
FAILURE_CLASSES = (STABLE_VIOLATION, NO_EVENTUAL_DELIVERY)

#: cap on the missing-pair list kept in an outcome (repro artifacts
#: must stay small; the full list is recomputable from the spec)
_MISSING_CAP = 50


@dataclass(frozen=True)
class TrialOutcome:
    """The deterministic verdict of one trial."""

    classification: str
    delivered_fraction: float
    #: undelivered (host, seq) pairs, sorted, capped at 50
    missing: Tuple[Tuple[str, int], ...]
    #: structural keys of stable / unresolved violations ("kind/h1/h2")
    violations: Tuple[str, ...]
    #: SHA-256 over canonical per-host delivery records
    signature: str
    end_time: float
    #: hosts that ran adversary personas (verdict excludes them)
    adversaries: Tuple[str, ...] = ()
    #: stable violations whose hosts include an adversary — contained
    #: damage, reported but not classified as a protocol failure
    contained_violations: Tuple[str, ...] = ()

    @property
    def failed(self) -> bool:
        return self.classification in FAILURE_CLASSES


def delivery_signature(system) -> str:
    """Canonical digest of every host's delivery records."""
    payload: List[List[object]] = []
    for host_id in sorted(system.hosts, key=str):
        records = sorted(system.hosts[host_id].deliveries.records(),
                         key=lambda r: r.seq)
        payload.append([str(host_id),
                        [[r.seq, round(r.delivered_at, 9), str(r.supplier),
                          bool(r.via_gapfill)] for r in records]])
    blob = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def build_system(spec: TrialSpec):
    """Deploy the trial's protocol instance (started) over its topology."""
    sim, built = build_topology(spec)
    n_hosts = spec.topology.clusters * spec.topology.hosts_per_cluster
    if spec.protocol == "tree":
        config = ProtocolConfig.for_scale(
            n_hosts, data_size_bits=FUZZ_DATA_BITS,
            crash_stable_lag=spec.crash_stable_lag, adaptive=spec.adaptive)
        system = BroadcastSystem(built, config=config)
    elif spec.protocol == "basic":
        system = BasicBroadcastSystem(built, config=BasicConfig(
            data_size_bits=FUZZ_DATA_BITS,
            crash_stable_lag=spec.crash_stable_lag))
    else:
        raise ValueError(f"unknown protocol {spec.protocol!r}")
    return sim, built, system.start()


def run_trial(spec: TrialSpec) -> TrialOutcome:
    """Run one trial to its verdict (pure function of the spec)."""
    sim, built, system = build_system(spec)
    monitor = None
    if spec.protocol == "tree":
        monitor = InvariantMonitor(system, sample_period=1.0,
                                   stable_window=spec.stable_window).start()
    ChaosPlan(sim, system, spec.chaos).start()
    adversaries = frozenset(a.host for a in spec.chaos.adversaries)
    correct = [h for h in built.hosts if str(h) not in adversaries]
    n = spec.workload.n
    system.broadcast_stream(n, interval=spec.workload.interval,
                            start_at=spec.workload.start_at)
    sim.run(until=spec.chaos.heal_by + 1.0)  # chaos window plays out fully
    delivered_all = system.run_until_delivered(
        n, timeout=spec.horizon,
        hosts=correct if adversaries else None)

    violations: Tuple[str, ...] = ()
    contained: Tuple[str, ...] = ()
    if monitor is not None:
        # Settle past one full stable window before the verdict: any
        # violation active right now either resolves (transient, fine)
        # or crosses the stable threshold — and stop() closes streaks
        # still open at that point, so a violation alive at the very
        # end is judged by its true duration, never dropped.
        sim.run(until=sim.now + spec.stable_window + 1.0)
        monitor.stop()
        report = monitor.report()
        stable = set(report.stable_violations)
        # A stable violation that involves an adversary host is damage
        # the misbehavior *contained*: report it, but only violations
        # entirely among correct hosts fail the trial.
        violations = tuple(sorted(
            "/".join(span.key) for span in stable
            if not any(h in adversaries for h in span_hosts(span))))
        contained = tuple(sorted(
            "/".join(span.key) for span in stable
            if any(h in adversaries for h in span_hosts(span))))

    missing: List[Tuple[str, int]] = []
    delivered_pairs = 0
    for host_id in correct:
        info_deliveries = system.hosts[host_id].deliveries
        for seq in range(1, n + 1):
            if seq in info_deliveries:
                delivered_pairs += 1
            else:
                missing.append((str(host_id), seq))
    total_pairs = len(correct) * n

    if violations:
        classification = STABLE_VIOLATION
    elif not delivered_all:
        classification = NO_EVENTUAL_DELIVERY
    else:
        classification = CLEAN
    return TrialOutcome(
        classification=classification,
        delivered_fraction=(delivered_pairs / total_pairs
                            if total_pairs else 1.0),
        missing=tuple(sorted(missing)[:_MISSING_CAP]),
        violations=violations,
        signature=delivery_signature(system),
        end_time=round(sim.now, 9),
        adversaries=tuple(sorted(adversaries)),
        contained_violations=contained,
    )
