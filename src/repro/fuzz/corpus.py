"""Campaign orchestration: fan trials out, shrink failures, summarize.

:func:`run_campaign` is the fuzzer's top level.  Trial *i* of a
campaign runs under a SHA-256-derived seed
(:func:`repro.exec.derive_seed` of the base seed and the trial index),
so the campaign is one deterministic function of ``(base_seed, trials,
options)`` — and because generation *and* execution happen inside the
work item, fanning trials over a
:class:`~repro.exec.engine.ProcessExecutor` produces bit-identical
records to a serial run (the engine's ordered-merge guarantee does the
rest).

Failures are shrunk **in the parent process, serially, in trial
order** — shrinking re-runs candidate simulations many times, and
keeping it out of the workers keeps worker wall-times comparable and
the shrink results independent of ``--jobs``.  Each shrunk failure is
written as a replayable JSON artifact named by campaign seed and trial
index.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..exec import Executor, SerialExecutor, WorkItem, derive_seed, values_or_raise
from .artifact import ReproArtifact, save_artifact
from .generator import FuzzOptions, TrialSpec, generate_trial
from .properties import CLEAN, TrialOutcome, run_trial
from .shrinker import ShrinkResult, fault_event_count, shrink_trial


def run_generated_trial(trial_seed: int, options: FuzzOptions
                        ) -> Tuple[TrialSpec, TrialOutcome]:
    """Generate and run one trial (module-level: picklable for workers)."""
    spec = generate_trial(trial_seed, options)
    return spec, run_trial(spec)


@dataclass(frozen=True)
class TrialRecord:
    """One campaign trial's verdict, plus shrink results when it failed."""

    index: int
    seed: int
    classification: str
    signature: str
    fault_events: int
    delivered_fraction: float
    shrunk_events: Optional[int] = None
    shrink_evals: int = 0
    artifact: Optional[str] = None

    @property
    def shrink_ratio(self) -> Optional[float]:
        if self.shrunk_events is None or self.fault_events == 0:
            return None
        return self.shrunk_events / self.fault_events


@dataclass
class CampaignSummary:
    """Everything one fuzz campaign observed."""

    base_seed: int
    trials: int
    options: FuzzOptions
    records: List[TrialRecord] = field(default_factory=list)

    @property
    def clean(self) -> int:
        return sum(1 for r in self.records if r.classification == CLEAN)

    @property
    def failures(self) -> List[TrialRecord]:
        return [r for r in self.records if r.classification != CLEAN]

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for record in self.records:
            out[record.classification] = out.get(record.classification, 0) + 1
        return out

    def shrink_ratios(self) -> List[float]:
        return [r.shrink_ratio for r in self.failures
                if r.shrink_ratio is not None]

    def min_repro_events(self) -> Optional[int]:
        shrunk = [r.shrunk_events for r in self.failures
                  if r.shrunk_events is not None]
        return min(shrunk) if shrunk else None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "base_seed": self.base_seed,
            "trials": self.trials,
            "options": {
                "protocol": self.options.protocol,
                "adaptive_frac": self.options.adaptive_frac,
                "horizon": self.options.horizon,
                "max_adversaries": self.options.max_adversaries,
            },
            "counts": self.counts(),
            "records": [{
                "index": r.index,
                "seed": r.seed,
                "classification": r.classification,
                "signature": r.signature,
                "fault_events": r.fault_events,
                "delivered_fraction": round(r.delivered_fraction, 6),
                "shrunk_events": r.shrunk_events,
                "shrink_evals": r.shrink_evals,
                "artifact": r.artifact,
            } for r in self.records],
        }

    def render(self) -> str:
        """Human-readable campaign report."""
        lines = [f"fuzz campaign: {self.trials} trial(s), base seed "
                 f"{self.base_seed}, protocol {self.options.protocol}"]
        for name, value in sorted(self.counts().items()):
            lines.append(f"  {name:22s} {value}")
        ratios = self.shrink_ratios()
        if ratios:
            lines.append(
                f"  shrink ratio mean {sum(ratios) / len(ratios):.2f} "
                f"(min repro: {self.min_repro_events()} event(s))")
        for record in self.failures:
            where = f" -> {record.artifact}" if record.artifact else ""
            shrunk = ("" if record.shrunk_events is None
                      else f", shrunk {record.fault_events}->"
                           f"{record.shrunk_events} events")
            lines.append(f"  trial {record.index} (seed {record.seed}): "
                         f"{record.classification}{shrunk}{where}")
        return "\n".join(lines)


def run_campaign(
    trials: int,
    base_seed: int,
    options: FuzzOptions = FuzzOptions(),
    executor: Optional[Executor] = None,
    shrink: bool = True,
    max_shrink_evals: int = 120,
    artifact_dir: Optional[str] = None,
) -> CampaignSummary:
    """Run ``trials`` derived-seed trials; shrink and archive failures."""
    if trials < 1:
        raise ValueError("need at least one trial")
    items = [
        WorkItem(key=("fuzz", base_seed, index), fn=run_generated_trial,
                 kwargs=dict(trial_seed=derive_seed(base_seed, "fuzz", index),
                             options=options))
        for index in range(trials)
    ]
    results = values_or_raise((executor or SerialExecutor()).map(items))

    summary = CampaignSummary(base_seed=base_seed, trials=trials,
                              options=options)
    if artifact_dir is not None:
        os.makedirs(artifact_dir, exist_ok=True)
    for index, (spec, outcome) in enumerate(results):
        events = fault_event_count(spec.chaos)
        shrunk: Optional[ShrinkResult] = None
        artifact_path: Optional[str] = None
        if outcome.failed and shrink:
            shrunk = shrink_trial(spec, outcome, max_evals=max_shrink_evals)
        if outcome.failed and artifact_dir is not None:
            final_spec = shrunk.spec if shrunk else spec
            final_outcome = shrunk.outcome if shrunk else outcome
            artifact_path = os.path.join(
                artifact_dir, f"repro-{base_seed}-{index}.json")
            save_artifact(ReproArtifact(
                spec=final_spec,
                expected_classification=final_outcome.classification,
                expected_signature=final_outcome.signature,
                original_events=events,
                shrink_evals=shrunk.evals if shrunk else 0,
                note=(f"fuzz campaign seed {base_seed}, trial {index}; "
                      f"protocol {options.protocol}"),
            ), artifact_path)
        summary.records.append(TrialRecord(
            index=index,
            seed=items[index].kwargs["trial_seed"],
            classification=outcome.classification,
            signature=outcome.signature,
            fault_events=events,
            delivered_fraction=outcome.delivered_fraction,
            shrunk_events=shrunk.events if shrunk else None,
            shrink_evals=shrunk.evals if shrunk else 0,
            artifact=artifact_path,
        ))
    return summary
