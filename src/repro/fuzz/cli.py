"""``python -m repro fuzz`` — run campaigns and replay repro artifacts.

Two subcommands::

    python -m repro fuzz run --trials 50 --seed 7 --jobs 4 \\
        --out fuzz-artifacts [--protocol tree|basic] [--json PATH]
    python -m repro fuzz replay fuzz-artifacts/repro-7-3.json

``run`` exits 0 when every trial is clean and 1 when any violation was
found (so a CI leg over a healthy configuration asserts cleanliness by
exit code alone); ``replay`` exits 0 only when the artifact reproduces
its recorded failure class *and* delivery signature byte-identically.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..exec import make_executor
from .artifact import load_artifact, replay
from .corpus import run_campaign
from .generator import FuzzOptions


def add_fuzz_args(parser: argparse.ArgumentParser) -> None:
    sub = parser.add_subparsers(dest="fuzz_command", required=True)

    run_p = sub.add_parser(
        "run", help="run a fuzz campaign, shrinking and archiving failures",
        description="Run seed-derived random trials; failures are "
                    "delta-debugged to minimal repros and written as "
                    "replayable JSON artifacts.")
    run_p.add_argument("--trials", type=int, default=20, metavar="N",
                       help="number of trials (default 20)")
    run_p.add_argument("--seed", type=int, default=0,
                       help="campaign base seed; per-trial seeds are "
                            "SHA-256-derived from it (default 0)")
    run_p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="fan trials out over N worker processes "
                            "(bit-identical to --jobs 1)")
    run_p.add_argument("--protocol", choices=("tree", "basic"),
                       default="tree",
                       help="protocol under test (default tree)")
    run_p.add_argument("--adaptive-frac", type=float, default=0.5,
                       metavar="P",
                       help="probability a tree trial runs the adaptive "
                            "control plane (default 0.5)")
    run_p.add_argument("--max-events", type=int, default=14, metavar="N",
                       help="max fault events per trial (default 14)")
    run_p.add_argument("--adversaries", type=int, default=0, metavar="K",
                       help="up to K adversarial host personas per trial "
                            "(default 0: no misbehaving hosts; verdicts "
                            "with adversaries cover correct hosts only)")
    run_p.add_argument("--personas", default=None, metavar="P1,P2",
                       help="comma-separated persona subset to draw from "
                            "(default: all personas)")
    run_p.add_argument("--horizon", type=float, default=300.0, metavar="S",
                       help="eventual-delivery deadline in simulated "
                            "seconds (default 300)")
    run_p.add_argument("--no-shrink", action="store_true",
                       help="archive raw failures without delta-debugging")
    run_p.add_argument("--shrink-evals", type=int, default=120, metavar="N",
                       help="max candidate re-runs per shrink (default 120)")
    run_p.add_argument("--out", default="fuzz-artifacts", metavar="DIR",
                       help="directory for repro artifacts "
                            "(default fuzz-artifacts)")
    run_p.add_argument("--json", metavar="PATH", default=None,
                       help="also write the campaign summary as JSON")
    run_p.set_defaults(fuzz_func=_run)

    replay_p = sub.add_parser(
        "replay", help="replay a repro artifact and verify it reproduces",
        description="Re-run the artifact's trial; succeeds only when the "
                    "recorded failure class and delivery signature are "
                    "reproduced byte-identically.")
    replay_p.add_argument("artifact", help="path to a repro-*.json artifact")
    replay_p.add_argument("--json", metavar="PATH", default=None,
                         help="write the replay outcome as JSON")
    replay_p.set_defaults(fuzz_func=_replay)


def _run(args: argparse.Namespace) -> int:
    extra = {}
    if args.personas is not None:
        extra["personas"] = tuple(
            p.strip() for p in args.personas.split(",") if p.strip())
    options = FuzzOptions(
        protocol=args.protocol,
        adaptive_frac=args.adaptive_frac,
        max_fault_events=max(args.max_events, 1),
        min_fault_events=min(6, max(args.max_events, 1)),
        horizon=args.horizon,
        max_adversaries=max(args.adversaries, 0),
        **extra,
    )
    jobs = max(1, args.jobs)
    executor = make_executor(jobs) if jobs > 1 else None
    summary = run_campaign(
        trials=args.trials, base_seed=args.seed, options=options,
        executor=executor, shrink=not args.no_shrink,
        max_shrink_evals=args.shrink_evals, artifact_dir=args.out)
    print(summary.render())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as out:
            json.dump(summary.as_dict(), out, indent=2)
            out.write("\n")
        print(f"wrote campaign summary to {args.json}", file=sys.stderr)
    return 1 if summary.failures else 0


def _replay(args: argparse.Namespace) -> int:
    artifact = load_artifact(args.artifact)
    outcome, reproduced = replay(artifact)
    print(f"artifact:       {args.artifact}")
    print(f"expected:       {artifact.expected_classification} "
          f"(signature {artifact.expected_signature[:16]}...)")
    print(f"replayed:       {outcome.classification} "
          f"(signature {outcome.signature[:16]}...)")
    print(f"delivered:      {outcome.delivered_fraction:.3f}")
    if outcome.violations:
        print(f"violations:     {', '.join(outcome.violations)}")
    if outcome.missing:
        print(f"missing pairs:  {len(outcome.missing)} "
              f"(first: {outcome.missing[0]})")
    print(f"reproduced:     {reproduced}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as out:
            json.dump({
                "artifact": args.artifact,
                "reproduced": reproduced,
                "classification": outcome.classification,
                "signature": outcome.signature,
                "delivered_fraction": outcome.delivered_fraction,
            }, out, indent=2)
            out.write("\n")
    return 0 if reproduced else 1


def run_fuzz_command(args: argparse.Namespace) -> int:
    return int(args.fuzz_func(args))
