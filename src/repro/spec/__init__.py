"""Abstract protocol specification and trace conformance checking.

A machine-checked stand-in for the paper's formal specification
([Garc87]): :class:`BroadcastSpec` states the Section 4 safety rules as
an abstract state machine; :func:`check_conformance` replays a concrete
simulation trace against it.
"""

from .conformance import ConformanceReport, check_conformance, check_refinement, check_trace
from .model import Attach, Broadcast, BroadcastSpec, Deliver, Detach, SpecState

__all__ = [
    "Attach",
    "Broadcast",
    "BroadcastSpec",
    "ConformanceReport",
    "Deliver",
    "Detach",
    "SpecState",
    "check_conformance",
    "check_refinement",
    "check_trace",
]
