"""An executable abstract model of the broadcast protocol.

The paper's formal specification lives in a separate technical report
([Garc87], by Garcia-Molina, Kogan, and Lynch).  We cannot reproduce
that document, but we can do the next best thing: state the protocol's
*safety* rules as an abstract state machine over global state, and
check every concrete simulation trace against it
(:mod:`repro.spec.conformance`).

Abstract global state:

* ``broadcast``      — the set of sequence numbers the source has issued
* ``info[h]``        — the messages host *h* has accepted
* ``parent[h]``      — *h*'s current parent pointer

Abstract actions (each mirrors a traced concrete event):

* ``Broadcast(seq)``              — the source issues the next message
* ``Deliver(host, seq, sender)``  — a host accepts a message
* ``Attach(host, parent)``        — a host adopts a new parent
* ``Detach(host)``                — a host clears its parent pointer

Preconditions encode the paper's Section 4 safety rules:

1. the source issues consecutive sequence numbers starting at 1;
2. a host never accepts a message that was never broadcast (no
   malicious messages, Section 2);
3. a host never accepts the same message twice (exactly-once delivery);
4. the supplier itself must already hold the message it supplies;
5. **the acceptance rule**: a message numbered above everything the
   host holds is accepted only from the host's current parent
   (Section 4.1) — anyone may fill holes below the maximum;
6. the source never attaches; a host never adopts itself.

A violated precondition is returned as a human-readable string; the
model never raises, so a checker can collect every violation in a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Union

from ..net import HostId


@dataclass(frozen=True)
class Broadcast:
    """The source issues the next data message."""

    seq: int


@dataclass(frozen=True)
class Deliver:
    """A host accepts one message supplied by ``sender``."""

    host: HostId
    seq: int
    sender: HostId


@dataclass(frozen=True)
class Attach:
    """A host adopts a new parent."""

    host: HostId
    parent: HostId


@dataclass(frozen=True)
class Detach:
    """A host clears its parent pointer."""

    host: HostId


Action = Union[Broadcast, Deliver, Attach, Detach]


@dataclass
class SpecState:
    """The abstract global state."""

    source: HostId
    hosts: List[HostId]
    broadcast: Set[int] = field(default_factory=set)
    next_seq: int = 1
    info: Dict[HostId, Set[int]] = field(default_factory=dict)
    parent: Dict[HostId, Optional[HostId]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for host in self.hosts:
            self.info.setdefault(host, set())
            self.parent.setdefault(host, None)

    def max_info(self, host: HostId) -> int:
        """Largest sequence number the host holds (0 if none)."""
        values = self.info[host]
        return max(values) if values else 0


class BroadcastSpec:
    """Precondition/effect semantics for the abstract actions."""

    def __init__(self, source: HostId, hosts: Sequence[HostId]) -> None:
        if source not in hosts:
            raise ValueError(f"source {source} must be one of the hosts")
        self.state = SpecState(source=source, hosts=list(hosts))

    # ------------------------------------------------------------------

    def precondition(self, action: Action) -> Optional[str]:
        """None when the action is allowed; otherwise the violated rule."""
        state = self.state
        if isinstance(action, Broadcast):
            if action.seq != state.next_seq:
                return (f"source must issue seq {state.next_seq}, "
                        f"issued {action.seq}")
            return None
        if isinstance(action, Deliver):
            if action.host not in state.info:
                return f"unknown host {action.host}"
            if action.seq not in state.broadcast:
                if not (action.host == state.source
                        and action.sender == state.source):
                    return (f"{action.host} accepted seq {action.seq} "
                            f"which was never broadcast")
            if action.seq in state.info[action.host]:
                return (f"{action.host} accepted seq {action.seq} twice")
            if (action.sender != action.host
                    and action.seq not in state.info.get(action.sender, set())):
                return (f"supplier {action.sender} gave {action.host} seq "
                        f"{action.seq} without holding it")
            if (action.host != state.source
                    and action.seq > state.max_info(action.host)
                    and action.sender != state.parent[action.host]):
                return (f"{action.host} accepted new-maximum seq {action.seq} "
                        f"from {action.sender}, but its parent is "
                        f"{state.parent[action.host]}")
            return None
        if isinstance(action, Attach):
            if action.host == state.source:
                return "the source never attaches to a parent"
            if action.parent == action.host:
                return f"{action.host} attached to itself"
            if action.parent not in state.info:
                return f"{action.host} attached to unknown host {action.parent}"
            return None
        if isinstance(action, Detach):
            if action.host == state.source:
                return "the source has no parent to detach from"
            return None
        return f"unknown action {action!r}"  # pragma: no cover

    def apply(self, action: Action) -> Optional[str]:
        """Check the precondition; when satisfied, apply the effect.

        Returns the violation (and still applies a best-effort effect so
        one early violation does not cascade into hundreds of bogus
        follow-ups).
        """
        violation = self.precondition(action)
        state = self.state
        if isinstance(action, Broadcast):
            state.broadcast.add(action.seq)
            state.next_seq = max(state.next_seq, action.seq + 1)
            state.info[state.source].add(action.seq)
        elif isinstance(action, Deliver):
            state.info.setdefault(action.host, set()).add(action.seq)
        elif isinstance(action, Attach):
            state.parent[action.host] = action.parent
        elif isinstance(action, Detach):
            state.parent[action.host] = None
        return violation

    # ------------------------------------------------------------------

    def final_check(self, expect_complete: bool = False) -> List[str]:
        """End-of-run checks over the accumulated abstract state."""
        violations = []
        state = self.state
        for host in state.hosts:
            extra = state.info[host] - state.broadcast
            if extra:
                violations.append(
                    f"{host} holds never-broadcast messages {sorted(extra)}")
        if expect_complete:
            for host in state.hosts:
                missing = state.broadcast - state.info[host]
                if missing:
                    violations.append(
                        f"{host} never received {sorted(missing)}")
        return violations
