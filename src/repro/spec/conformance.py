"""Trace conformance: replay a concrete run against the abstract model.

The simulation's structured trace records every externally visible
protocol event.  :func:`check_conformance` maps those records to the
abstract actions of :class:`repro.spec.model.BroadcastSpec`, replays
them in timestamp order, and reports every safety violation — a
machine-checked bridge between the implementation and the paper's
Section 4 rules.

Event mapping:

==================  =============================================
trace kind          abstract action
==================  =============================================
source.broadcast    Broadcast(seq)
host.deliver        Deliver(host, seq, sender)
host.attach_ok      Attach(host, parent)
host.detach         Detach(host)
host.parent_timeout Detach(host)
==================  =============================================

Tracing must be enabled for the run being checked (it is by default).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..core.engine import BroadcastSystem
from ..net import HostId
from ..sim import Simulator, TraceRecord
from .model import Attach, Broadcast, BroadcastSpec, Deliver, Detach

#: trace kinds the checker consumes, in one pass
_RELEVANT = ("source.broadcast", "host.deliver", "host.attach_ok",
             "host.detach", "host.parent_timeout")


@dataclass
class ConformanceReport:
    """Everything the checker found."""

    actions_checked: int = 0
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no violations were found."""
        return not self.violations

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        status = "OK" if self.ok else f"{len(self.violations)} violations"
        return f"<ConformanceReport {self.actions_checked} actions, {status}>"


def _to_action(record: TraceRecord):
    if record.kind == "source.broadcast":
        return Broadcast(seq=record["seq"])
    if record.kind == "host.deliver":
        return Deliver(host=HostId(record.source), seq=record["seq"],
                       sender=HostId(record["sender"]))
    if record.kind == "host.attach_ok":
        return Attach(host=HostId(record.source),
                      parent=HostId(record["parent"]))
    if record.kind in ("host.detach", "host.parent_timeout"):
        return Detach(host=HostId(record.source))
    return None


def check_trace(
    sim: Simulator,
    source: HostId,
    hosts: Sequence[HostId],
    expect_complete: bool = False,
) -> ConformanceReport:
    """Replay a simulator's trace against the abstract specification."""
    spec = BroadcastSpec(source=source, hosts=hosts)
    report = ConformanceReport()
    relevant = [r for r in sim.trace if r.kind in _RELEVANT]
    relevant.sort(key=lambda r: r.time)
    for record in relevant:
        action = _to_action(record)
        if action is None:  # pragma: no cover - _RELEVANT covers all
            continue
        report.actions_checked += 1
        violation = spec.apply(action)
        if violation is not None:
            report.violations.append(f"t={record.time:.3f}: {violation}")
    report.violations.extend(spec.final_check(expect_complete=expect_complete))
    return report


def check_refinement(system: BroadcastSystem,
                     spec: BroadcastSpec) -> List[str]:
    """State correspondence: the concrete hosts must match the abstract
    state reached by replaying the trace.

    This is the refinement half of a simulation-relation argument: the
    trace replay establishes that every step was *allowed*; this check
    establishes that the implementation's final state is the one the
    abstract machine computes from those steps.
    """
    violations = []
    for host_id, host in system.hosts.items():
        concrete_info = set(host.info)
        abstract_info = spec.state.info.get(host_id, set())
        if concrete_info != abstract_info:
            missing = sorted(abstract_info - concrete_info)
            extra = sorted(concrete_info - abstract_info)
            violations.append(
                f"{host_id} INFO diverges from the abstract state "
                f"(missing {missing}, extra {extra})")
        if host_id != system.source_id:
            abstract_parent = spec.state.parent.get(host_id)
            if host.parent != abstract_parent:
                violations.append(
                    f"{host_id} parent is {host.parent} but the abstract "
                    f"state says {abstract_parent}")
    return violations


def check_conformance(system: BroadcastSystem,
                      expect_complete: bool = False) -> ConformanceReport:
    """Check a BroadcastSystem's whole run: trace safety + refinement."""
    spec = BroadcastSpec(source=system.source_id, hosts=system.built.hosts)
    report = ConformanceReport()
    relevant = [r for r in system.sim.trace if r.kind in _RELEVANT]
    relevant.sort(key=lambda r: r.time)
    for record in relevant:
        action = _to_action(record)
        if action is None:  # pragma: no cover - _RELEVANT covers all
            continue
        report.actions_checked += 1
        violation = spec.apply(action)
        if violation is not None:
            report.violations.append(f"t={record.time:.3f}: {violation}")
    report.violations.extend(spec.final_check(expect_complete=expect_complete))
    report.violations.extend(check_refinement(system, spec))
    return report
