"""Declarative experiment registry: one :class:`ExperimentSpec` per table.

This replaces the ad-hoc ``ALL_RUNNERS`` dict.  A spec knows its
runner, its typed default parameters (introspected from the runner's
signature), which parameter carries the RNG seed, and whether the
runner accepts an :class:`~repro.exec.Executor` for intra-experiment
fan-out.  Seed threading is *normalized* here: ``spec.run(seed=...)``
always lands on the right parameter, and registering a runner whose
signature cannot accept its declared seed parameter fails loudly at
import time instead of silently dropping ``--seed``.

``ALL_RUNNERS`` remains as a derived compatibility view, and every
``run_eN_*`` function stays importable from :mod:`repro.experiments` —
no deprecation warnings, benchmarks keep working unchanged.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional

from ..exec import Executor
from .records import ExperimentResult
from .runners import (
    run_e1_cost,
    run_e2_delay,
    run_e3_recovery,
    run_e4_partition,
    run_e5_congestion,
    run_e6_control,
    run_e6_tuning,
    run_e7_tradeoff,
    run_e8_fig31,
    run_e9_fig41,
    run_e10_ablation,
    run_e11_fig32,
    run_e12_epidemic,
    run_e13_piggyback,
    run_e14_multisource,
    run_e15_load_adaptation,
    run_e16_clock_skew,
    run_e17_design_ablation,
    run_e18_relative_reliability,
    run_e19_hierarchical,
    run_e20_host_churn,
    run_e21_adversarial_timing,
    run_e22_parallel_speedup,
    run_e23_fuzz_campaign,
    run_e24_adversary_containment,
    run_e25_saturation,
)

RunnerFn = Callable[..., ExperimentResult]


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment: id, title, runner, and normalized parameters."""

    id: str
    runner: RunnerFn
    title: str
    seed_param: str = "seed"
    #: typed default parameters, introspected from the runner signature
    defaults: Mapping[str, Any] = field(default_factory=dict)
    accepts_executor: bool = False

    @classmethod
    def from_runner(cls, exp_id: str, runner: RunnerFn,
                    seed_param: str = "seed",
                    title: Optional[str] = None) -> "ExperimentSpec":
        """Build a spec by introspecting ``runner``'s signature."""
        signature = inspect.signature(runner)
        if seed_param not in signature.parameters:
            raise ValueError(
                f"{exp_id}: runner {runner.__name__} has no parameter "
                f"{seed_param!r} to thread the seed through")
        defaults = {
            name: parameter.default
            for name, parameter in signature.parameters.items()
            if parameter.default is not inspect.Parameter.empty
            and name != "executor"
        }
        if title is None:
            doc = (runner.__doc__ or "").strip()
            title = doc.splitlines()[0].rstrip(".") if doc else exp_id
        return cls(id=exp_id, runner=runner, title=title,
                   seed_param=seed_param, defaults=defaults,
                   accepts_executor="executor" in signature.parameters)

    @property
    def default_seed(self) -> Optional[int]:
        value = self.defaults.get(self.seed_param)
        return value if isinstance(value, int) else None

    def run(self, seed: Optional[int] = None,
            executor: Optional[Executor] = None,
            **overrides: Any) -> ExperimentResult:
        """Run the experiment with normalized seed/executor threading.

        ``seed`` always lands on :attr:`seed_param`, whatever the
        runner calls it.  ``executor`` is forwarded only to runners
        that fan out internally; passing it to a purely serial runner
        is silently a no-op rather than a ``TypeError``, so callers
        can thread one executor through a heterogeneous batch.
        """
        kwargs = dict(overrides)
        if seed is not None:
            kwargs[self.seed_param] = seed
        if executor is not None and self.accepts_executor:
            kwargs["executor"] = executor
        return self.runner(**kwargs)

    def cache_params(self, seed: Optional[int] = None,
                     **overrides: Any) -> Dict[str, Any]:
        """The fully-resolved parameter mapping that keys a cache entry."""
        params = dict(self.defaults)
        params.update(overrides)
        if seed is not None:
            params[self.seed_param] = seed
        return params


#: the registry, in canonical E-series order
REGISTRY: Dict[str, ExperimentSpec] = {}


def register(exp_id: str, runner: RunnerFn,
             seed_param: str = "seed") -> ExperimentSpec:
    """Add one spec; duplicate ids are a programming error."""
    if exp_id in REGISTRY:
        raise ValueError(f"experiment {exp_id!r} already registered")
    spec = ExperimentSpec.from_runner(exp_id, runner, seed_param=seed_param)
    REGISTRY[exp_id] = spec
    return spec


def get_spec(exp_id: str) -> ExperimentSpec:
    """Lookup with a helpful error listing what exists."""
    try:
        return REGISTRY[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {', '.join(REGISTRY)}"
        ) from None


def run_registered(exp_id: str, seed: Optional[int] = None,
                   jobs: int = 1, **overrides: Any) -> ExperimentResult:
    """Module-level entry point for worker processes (picklable by name).

    The parallel CLI fans whole experiments out to workers; each worker
    re-resolves the spec by id and runs it serially inside the worker
    (``jobs`` here is for the experiment's *internal* fan-out only).
    """
    from ..exec import make_executor

    executor = make_executor(jobs) if jobs > 1 else None
    return get_spec(exp_id).run(seed=seed, executor=executor, **overrides)


for _exp_id, _runner in (
    ("E1", run_e1_cost),
    ("E2", run_e2_delay),
    ("E3", run_e3_recovery),
    ("E4", run_e4_partition),
    ("E5", run_e5_congestion),
    ("E6", run_e6_control),
    ("E6b", run_e6_tuning),
    ("E7", run_e7_tradeoff),
    ("E8", run_e8_fig31),
    ("E9", run_e9_fig41),
    ("E10", run_e10_ablation),
    ("E11", run_e11_fig32),
    ("E12", run_e12_epidemic),
    ("E13", run_e13_piggyback),
    ("E14", run_e14_multisource),
    ("E15", run_e15_load_adaptation),
    ("E16", run_e16_clock_skew),
    ("E17", run_e17_design_ablation),
    ("E18", run_e18_relative_reliability),
    ("E19", run_e19_hierarchical),
    ("E20", run_e20_host_churn),
    ("E21", run_e21_adversarial_timing),
    ("E22", run_e22_parallel_speedup),
    ("E23", run_e23_fuzz_campaign),
    ("E24", run_e24_adversary_containment),
    ("E25", run_e25_saturation),
):
    register(_exp_id, _runner)


#: backwards-compatible view of the old ad-hoc dict: id -> runner function
ALL_RUNNERS: Dict[str, RunnerFn] = {
    exp_id: spec.runner for exp_id, spec in REGISTRY.items()
}

del _exp_id, _runner
