"""Result records shared by experiment runners, benchmarks, and the CLI."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from ..analysis.report import Table


@dataclass
class ExperimentResult:
    """One experiment's outcome: an id, titled rows, and free-form notes."""

    experiment_id: str
    title: str
    columns: Sequence[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        """Append one row; cells must match the declared columns."""
        missing = [c for c in self.columns if c not in values]
        if missing:
            raise ValueError(f"row missing columns {missing}")
        self.rows.append(values)

    def note(self, text: str) -> None:
        """Attach a free-form note."""
        self.notes.append(text)

    def table(self) -> Table:
        """Read-only view (copy) of internal state."""
        table = Table(self.columns, title=f"{self.experiment_id}: {self.title}")
        for row in self.rows:
            table.add_row(*[row[c] for c in self.columns])
        return table

    def render(self) -> str:
        """Render as aligned plain text."""
        parts = [self.table().render()]
        parts.extend(f"  note: {n}" for n in self.notes)
        return "\n".join(parts)

    def render_markdown(self) -> str:
        """GitHub-flavoured markdown table (for EXPERIMENTS.md updates)."""
        def cell(value: Any) -> str:
            if isinstance(value, float):
                if value != value:
                    return "-"
                return f"{value:.3f}".rstrip("0").rstrip(".") or "0"
            return str(value)

        lines = [f"### {self.experiment_id}: {self.title}", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(cell(row[c]) for c in self.columns)
                         + " |")
        for note in self.notes:
            lines.append(f"\n*{note}*")
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready representation."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "columns": list(self.columns),
            "rows": self.rows,
            "notes": self.notes,
        }
