"""Experiment harness: runners for every table/figure in DESIGN.md.

Experiments are registered declaratively in
:mod:`repro.experiments.registry` (:data:`REGISTRY`); ``ALL_RUNNERS``
survives as a derived compatibility view.  The runners accept an
optional executor from :mod:`repro.exec` to fan their grids out over
worker processes with bit-identical results.
"""

from .records import ExperimentResult
from .registry import ALL_RUNNERS, REGISTRY, ExperimentSpec, get_spec, run_registered
from .runners import (
    run_e1_cost,
    run_e2_delay,
    run_e3_recovery,
    run_e4_partition,
    run_e5_congestion,
    run_e6_control,
    run_e6_tuning,
    run_e7_tradeoff,
    run_e8_fig31,
    run_e9_fig41,
    run_e10_ablation,
    run_e11_fig32,
    run_e12_epidemic,
    run_e13_piggyback,
    run_e14_multisource,
    run_e15_load_adaptation,
    run_e16_clock_skew,
    run_e17_design_ablation,
    run_e18_relative_reliability,
    run_e19_hierarchical,
    run_e20_host_churn,
    run_e21_adversarial_timing,
    run_e22_parallel_speedup,
    run_e23_fuzz_campaign,
    run_e24_adversary_containment,
    run_e25_saturation,
)
from .saturation import (
    ARRIVAL_SHAPES,
    CountingSource,
    SloSpec,
    arrival_times,
    delivery_latency_stats,
    measure_capacity,
    schedule_open_loop,
)
from .sweep import grid, sweep
from .workload import bursty_stream, constant_rate_stream, poisson_stream

__all__ = [
    "ALL_RUNNERS",
    "REGISTRY",
    "ExperimentResult",
    "ExperimentSpec",
    "get_spec",
    "run_registered",
    "ARRIVAL_SHAPES",
    "CountingSource",
    "SloSpec",
    "arrival_times",
    "bursty_stream",
    "constant_rate_stream",
    "delivery_latency_stats",
    "grid",
    "measure_capacity",
    "poisson_stream",
    "schedule_open_loop",
    "sweep",
    "run_e1_cost",
    "run_e2_delay",
    "run_e3_recovery",
    "run_e4_partition",
    "run_e5_congestion",
    "run_e6_control",
    "run_e6_tuning",
    "run_e7_tradeoff",
    "run_e8_fig31",
    "run_e9_fig41",
    "run_e10_ablation",
    "run_e11_fig32",
    "run_e12_epidemic",
    "run_e13_piggyback",
    "run_e14_multisource",
    "run_e15_load_adaptation",
    "run_e16_clock_skew",
    "run_e17_design_ablation",
    "run_e18_relative_reliability",
    "run_e19_hierarchical",
    "run_e20_host_churn",
    "run_e21_adversarial_timing",
    "run_e22_parallel_speedup",
    "run_e23_fuzz_campaign",
    "run_e24_adversary_containment",
    "run_e25_saturation",
]
