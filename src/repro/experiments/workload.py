"""Workload generators: how broadcast streams are injected."""

from __future__ import annotations

from typing import Callable, Protocol

from ..sim import Simulator


class SourceLike(Protocol):
    """Anything with a ``broadcast(content) -> int`` method."""

    def broadcast(self, content: object = None) -> int: ...


def constant_rate_stream(
    sim: Simulator,
    source: SourceLike,
    count: int,
    interval: float,
    start_at: float = 0.0,
    content: Callable[[int], object] = lambda k: f"msg-{k}",
) -> None:
    """``count`` messages, one every ``interval`` seconds."""
    if count < 0 or interval <= 0:
        raise ValueError("count must be >= 0 and interval positive")
    for k in range(count):
        sim.schedule_at(start_at + k * interval,
                        lambda k=k: source.broadcast(content(k + 1)))


def poisson_stream(
    sim: Simulator,
    source: SourceLike,
    count: int,
    rate: float,
    start_at: float = 0.0,
    rng_stream: str = "workload.poisson",
    content: Callable[[int], object] = lambda k: f"msg-{k}",
) -> None:
    """``count`` messages with exponential inter-arrival times (mean 1/rate)."""
    if count < 0 or rate <= 0:
        raise ValueError("count must be >= 0 and rate positive")
    rng = sim.rng.stream(rng_stream)
    at = start_at
    for k in range(count):
        at += rng.expovariate(rate)
        sim.schedule_at(at, lambda k=k: source.broadcast(content(k + 1)))


def bursty_stream(
    sim: Simulator,
    source: SourceLike,
    bursts: int,
    burst_size: int,
    burst_gap: float,
    start_at: float = 0.0,
    intra_burst_interval: float = 0.01,
    content: Callable[[int], object] = lambda k: f"msg-{k}",
) -> int:
    """Bursts of back-to-back messages; returns the total message count."""
    # Validated per parameter: a combined "invalid burst parameters"
    # error made sweep callers bisect their own argument lists.
    if bursts < 0:
        raise ValueError(f"bursts must be >= 0, got {bursts}")
    if burst_size < 1:
        raise ValueError(f"burst_size must be at least 1, got {burst_size}")
    if burst_gap <= 0:
        raise ValueError(f"burst_gap must be positive, got {burst_gap}")
    if intra_burst_interval <= 0:
        raise ValueError(
            f"intra_burst_interval must be positive, got {intra_burst_interval}")
    k = 0
    for b in range(bursts):
        for i in range(burst_size):
            k += 1
            at = start_at + b * burst_gap + i * intra_burst_interval
            sim.schedule_at(at, lambda k=k: source.broadcast(content(k)))
    return k
