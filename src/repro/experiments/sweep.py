"""Tiny parameter-sweep helper shared by experiments and user studies."""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Iterator, List, Sequence


def grid(**axes: Sequence[Any]) -> Iterator[Dict[str, Any]]:
    """Cartesian product over named axes, in deterministic order.

    >>> list(grid(a=[1, 2], b=["x"]))
    [{'a': 1, 'b': 'x'}, {'a': 2, 'b': 'x'}]
    """
    if not axes:
        return iter(())
    names = sorted(axes)
    for values in itertools.product(*(axes[name] for name in names)):
        yield dict(zip(names, values))


def sweep(fn: Callable[..., Dict[str, Any]],
          **axes: Sequence[Any]) -> List[Dict[str, Any]]:
    """Call ``fn(**point)`` for every grid point; returns point+result rows.

    ``fn`` must return a dict of measured values; each output row is the
    grid point merged with the measurements (measurements win on key
    collisions being a bug, so they are checked).
    """
    rows = []
    for point in grid(**axes):
        measured = fn(**point)
        overlap = set(point) & set(measured)
        if overlap:
            raise ValueError(f"measurement keys collide with axes: {overlap}")
        row = dict(point)
        row.update(measured)
        rows.append(row)
    return rows
