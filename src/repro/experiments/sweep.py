"""Parameter-sweep helper shared by experiments and user studies.

``sweep()`` fans a measurement function out over a cartesian grid —
serially by default, or across worker processes when given an executor
from :mod:`repro.exec` — and merges the rows into an
:class:`~repro.experiments.ExperimentResult` in deterministic grid
order regardless of completion order.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

from ..exec import Executor, SerialExecutor, WorkItem, derive_seed, values_or_raise
from .records import ExperimentResult


def grid(**axes: Sequence[Any]) -> Iterator[Dict[str, Any]]:
    """Cartesian product over named axes, in deterministic order.

    >>> list(grid(a=[1, 2], b=["x"]))
    [{'a': 1, 'b': 'x'}, {'a': 2, 'b': 'x'}]
    """
    if not axes:
        return iter(())
    names = sorted(axes)
    for values in itertools.product(*(axes[name] for name in names)):
        yield dict(zip(names, values))


def sweep(fn: Callable[..., Dict[str, Any]],
          executor: Optional[Executor] = None,
          experiment_id: str = "sweep",
          title: Optional[str] = None,
          base_seed: Optional[int] = None,
          seed_param: str = "seed",
          **axes: Sequence[Any]) -> ExperimentResult:
    """Call ``fn(**point)`` for every grid point; merge into a result.

    ``fn`` must return a dict of measured values; each output row is
    the grid point merged with the measurements.  Measurement keys
    colliding with axis names is a bug, reported with the offending
    grid point.  With ``base_seed`` set, every point also receives a
    deterministically derived per-point seed under ``seed_param``
    (stable across serial and parallel execution).

    Pass an executor from :func:`repro.exec.make_executor` to fan the
    grid out over worker processes — ``fn`` must then be a picklable
    module-level function.  Rows always come back in grid order.
    """
    points = list(grid(**axes))
    items = [
        WorkItem(
            key=(experiment_id,) + tuple(sorted(point.items())),
            fn=fn, kwargs=point,
            seed=(derive_seed(base_seed, experiment_id,
                              sorted(point.items()))
                  if base_seed is not None else None),
            seed_param=seed_param)
        for point in points
    ]
    measurements = values_or_raise((executor or SerialExecutor()).map(items))

    axis_names = sorted(axes)
    columns: List[str] = list(axis_names)
    rows: List[Dict[str, Any]] = []
    for point, item, measured in zip(points, items, measurements):
        if not isinstance(measured, dict):
            raise TypeError(
                f"sweep fn must return a dict of measurements, got "
                f"{type(measured).__name__} at grid point {point}")
        overlap = set(point) & set(measured)
        if overlap:
            raise ValueError(
                f"measurement keys collide with axes: {sorted(overlap)} "
                f"at grid point {point}")
        for key in measured:
            if key not in columns:
                columns.append(key)
        row = dict(point)
        if item.seed is not None:
            row.setdefault(seed_param, item.seed)
        row.update(measured)
        rows.append(row)
    if base_seed is not None and any(seed_param in r for r in rows):
        if seed_param not in columns:
            columns.insert(len(axis_names), seed_param)

    result = ExperimentResult(
        experiment_id,
        title if title is not None else
        f"sweep of {getattr(fn, '__name__', 'fn')} over {axis_names}",
        columns)
    for row in rows:
        for column in columns:
            row.setdefault(column, "-")
        result.add_row(**row)
    return result
