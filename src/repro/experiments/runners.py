"""Experiment runners: one function per experiment in DESIGN.md.

Each ``run_eN_*`` function builds fresh simulations, drives the
workload, and returns an :class:`ExperimentResult` whose rows are the
paper-style table.  Benchmarks (``benchmarks/bench_eN_*.py``) call these
with default parameters; EXPERIMENTS.md records their output.

All runners are deterministic for a given ``seed``.
"""

from __future__ import annotations

import dataclasses
import math
import os
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..analysis import (
    CounterSnapshot,
    congestion_report,
    cost_report,
    delivery_fraction,
    optimal_inter_cluster_cost,
    recovery_locality,
    system_delay_stats,
    time_to_full_delivery,
    traffic_report,
)
from ..baseline import (
    BasicBroadcastSystem,
    BasicConfig,
    EpidemicBroadcastSystem,
    EpidemicConfig,
)
from ..core import BroadcastSystem, ClusterMode, ProtocolConfig, ResourceConfig
from ..net import (
    HostId,
    LinkFlapper,
    cheap_spec,
    expensive_spec,
    link_pressure,
    wan_of_lans,
)
from ..scenarios import (
    BriefWindowSchedule,
    WindowSpec,
    figure_3_1,
    figure_3_2,
    figure_4_1,
    midstream_partition,
)
from ..exec import Executor, SerialExecutor, WorkItem, values_or_raise
from ..sim import Simulator
from ..verify import check_all, run_to_quiescence, true_leaders
from .records import ExperimentResult
from .saturation import (
    CountingSource,
    SloSpec,
    delivery_latency_stats,
    measure_capacity,
    schedule_open_loop,
)

#: smaller data messages for sweeps that must not saturate 56 kbit/s
#: trunks under the basic algorithm's N-copies-per-message load
SWEEP_DATA_BITS = 4_000


def _tree_config(n_hosts: int, **overrides) -> ProtocolConfig:
    return ProtocolConfig.for_scale(n_hosts, data_size_bits=SWEEP_DATA_BITS,
                                    **overrides)


def _basic_config(**overrides) -> BasicConfig:
    return BasicConfig(**{"data_size_bits": SWEEP_DATA_BITS, **overrides})


def _map_items(executor: Optional[Executor],
               items: Sequence[WorkItem]) -> List[Any]:
    """Run work items (serially by default) and unwrap their values.

    Runners that fan out per grid point route *all* execution — serial
    included — through this, so ``--jobs 1`` and ``--jobs N`` follow
    the identical code path and merge rows in identical (submission)
    order.  A failed point raises :class:`~repro.exec.ExecutionError`
    naming the offending key.
    """
    return values_or_raise((executor or SerialExecutor()).map(items))


def _run_stream(system, n: int, interval: float, warmup: int,
                timeout: float, settle: float = 20.0,
                ) -> Tuple[bool, float, CounterSnapshot, float]:
    """Warmup, settle, snapshot, stream, wait.

    The settle phase lets the host parent graph converge (attachment,
    leader election, gap-fill cleanup) before the measured window, so
    marginal costs reflect steady state rather than tree construction.
    Returns (ok, completion_time, snapshot, warmup_end_time).
    """
    sim = system.sim
    if warmup:
        system.broadcast_stream(warmup, interval=interval, start_at=sim.now + 1.0)
        system.run_until_delivered(warmup, timeout=timeout)
        sim.run(until=sim.now + settle)
    snapshot = CounterSnapshot(sim)
    warmup_end = sim.now
    system.broadcast_stream(n, interval=interval, start_at=sim.now + 1.0)
    ok = system.run_until_delivered(warmup + n, timeout=timeout)
    return ok, sim.now, snapshot, warmup_end


# ----------------------------------------------------------------------
# E1 / E2 — cost and delay vs the basic algorithm, failure-free sweep
# ----------------------------------------------------------------------


def _sweep_point(protocol: str, k: int, m: int, seed: int, n: int,
                 interval: float, warmup: int) -> Dict[str, float]:
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=k, hosts_per_cluster=m, backbone="line")
    if protocol == "tree":
        system = BroadcastSystem(built, config=_tree_config(k * m))
    elif protocol == "basic":
        system = BasicBroadcastSystem(built, config=_basic_config())
    else:
        raise ValueError(protocol)
    system.start()
    ok, done_at, snapshot, warmup_end = _run_stream(
        system, n, interval, warmup, timeout=600.0)
    cost = cost_report(sim, n, since=snapshot)
    delays = system_delay_stats(system.delivery_records(), system.source_id,
                                since_seq=warmup)
    return {
        "ok": ok,
        "inter_cluster_per_msg": cost.inter_cluster_data_per_msg,
        "delay_mean": delays.mean,
        "delay_p99": delays.p99,
    }


def _e1_e2_items(experiment: str, ks: Sequence[int], ms: Sequence[int],
                 seed: int, n: int, interval: float,
                 warmup: int) -> List[WorkItem]:
    """(protocol, k, m) grid for E1/E2, in deterministic order."""
    return [
        WorkItem(key=(experiment, protocol, k, m), fn=_sweep_point,
                 kwargs=dict(protocol=protocol, k=k, m=m, seed=seed, n=n,
                             interval=interval, warmup=warmup))
        for k in ks for m in ms for protocol in ("tree", "basic")
    ]


def run_e1_cost(seed: int = 1, ks: Sequence[int] = (2, 4, 6),
                ms: Sequence[int] = (1, 2, 4), n: int = 20,
                interval: float = 2.0, warmup: int = 5,
                executor: Optional[Executor] = None) -> ExperimentResult:
    """E1: inter-cluster transmissions per message, tree vs basic."""
    result = ExperimentResult(
        "E1", "Inter-cluster data transmissions per message (failure-free)",
        ["clusters", "hosts_per_cluster", "optimal", "tree", "basic",
         "tree_vs_optimal", "basic_vs_tree"])
    items = _e1_e2_items("E1", ks, ms, seed, n, interval, warmup)
    values = dict(zip((i.key for i in items), _map_items(executor, items)))
    for k in ks:
        for m in ms:
            tree = values[("E1", "tree", k, m)]
            basic = values[("E1", "basic", k, m)]
            optimal = optimal_inter_cluster_cost(k)
            result.add_row(
                clusters=k, hosts_per_cluster=m, optimal=optimal,
                tree=tree["inter_cluster_per_msg"],
                basic=basic["inter_cluster_per_msg"],
                tree_vs_optimal=(tree["inter_cluster_per_msg"] / optimal
                                 if optimal else float("nan")),
                basic_vs_tree=(basic["inter_cluster_per_msg"]
                               / tree["inter_cluster_per_msg"]
                               if tree["inter_cluster_per_msg"] else float("nan")))
    result.note("paper: tree needs k-1 (optimal); basic needs >= k-1, "
                "growing with hosts per cluster")
    return result


def run_e2_delay(seed: int = 1, ks: Sequence[int] = (2, 4, 6),
                 ms: Sequence[int] = (2, 4), n: int = 20,
                 interval: float = 2.0, warmup: int = 5,
                 executor: Optional[Executor] = None) -> ExperimentResult:
    """E2: delivery delay, tree vs basic (expected comparable)."""
    result = ExperimentResult(
        "E2", "Delivery delay (failure-free)",
        ["clusters", "hosts_per_cluster", "tree_mean", "basic_mean",
         "tree_p99", "basic_p99"])
    items = _e1_e2_items("E2", ks, ms, seed, n, interval, warmup)
    values = dict(zip((i.key for i in items), _map_items(executor, items)))
    for k in ks:
        for m in ms:
            tree = values[("E2", "tree", k, m)]
            basic = values[("E2", "basic", k, m)]
            result.add_row(clusters=k, hosts_per_cluster=m,
                           tree_mean=tree["delay_mean"],
                           basic_mean=basic["delay_mean"],
                           tree_p99=tree["delay_p99"],
                           basic_p99=basic["delay_p99"])
    result.note("paper: delay comparable; basic rides shortest paths, tree "
                "pays extra hops but avoids per-copy serialization at the source")
    return result


# ----------------------------------------------------------------------
# E3 — recovery locality under message loss
# ----------------------------------------------------------------------


def run_e3_recovery(seed: int = 2, losses: Sequence[float] = (0.02, 0.05, 0.1, 0.2),
                    k: int = 3, m: int = 3, n: int = 30,
                    interval: float = 1.0) -> ExperimentResult:
    """E3: who redelivers lost messages, and at what cost."""
    result = ExperimentResult(
        "E3", "Recovery under loss: delivery and redelivery locality",
        ["loss", "protocol", "delivered", "recoveries",
         "local_fraction", "from_source_fraction", "delay_mean"])
    for loss in losses:
        for protocol in ("tree", "basic"):
            sim = Simulator(seed=seed)
            built = wan_of_lans(
                sim, clusters=k, hosts_per_cluster=m, backbone="line",
                cheap=cheap_spec(loss_prob=loss),
                expensive=expensive_spec(loss_prob=loss))
            if protocol == "tree":
                system = BroadcastSystem(built, config=_tree_config(k * m))
            else:
                system = BasicBroadcastSystem(built, config=_basic_config())
            system.start()
            system.broadcast_stream(n, interval=interval, start_at=2.0)
            system.run_until_delivered(n, timeout=600.0)
            records = system.delivery_records()
            locality = recovery_locality(records, built.network, system.source_id)
            delays = system_delay_stats(records, system.source_id)
            result.add_row(
                loss=loss, protocol=protocol,
                delivered=delivery_fraction(records, n, system.source_id),
                recoveries=locality.total_recoveries,
                local_fraction=locality.local_fraction,
                from_source_fraction=locality.source_fraction,
                delay_mean=delays.mean)
    result.note("paper: tree redelivers from cluster neighbors / parent "
                "cluster; basic always redelivers from the source")
    return result


# ----------------------------------------------------------------------
# E4 — behavior during and after a partition
# ----------------------------------------------------------------------


def run_e4_partition(seed: int = 3, k: int = 3, m: int = 2,
                     partition: Tuple[float, float] = (10.0, 40.0),
                     n: int = 30, interval: float = 1.0) -> ExperimentResult:
    """E4: wasted traffic during a partition; completion after repair."""
    result = ExperimentResult(
        "E4", "Mid-stream partition of one cluster",
        ["protocol", "sends_toward_partitioned_per_s", "delivered_all",
         "completion_after_heal_s"])
    start, end = partition
    for protocol in ("tree", "basic"):
        sim = Simulator(seed=seed)
        built = wan_of_lans(sim, clusters=k, hosts_per_cluster=m,
                            backbone="line")
        isolated = set(str(h) for h in built.clusters[-1])
        midstream_partition(built, cluster_index=k - 1, start=start, end=end)
        if protocol == "tree":
            system = BroadcastSystem(built, config=_tree_config(k * m))
        else:
            system = BasicBroadcastSystem(built, config=_basic_config())
        system.start()
        system.broadcast_stream(n, interval=interval, start_at=2.0)
        ok = system.run_until_delivered(n, timeout=600.0)
        completion = time_to_full_delivery(system.delivery_records(), n,
                                           system.source_id)
        sends = [r for r in sim.trace.records(kind="net.host_send",
                                              since=start)
                 if r.time < end and r["dst"] in isolated
                 and r.source not in isolated]
        result.add_row(
            protocol=protocol,
            sends_toward_partitioned_per_s=len(sends) / (end - start),
            delivered_all=ok,
            completion_after_heal_s=(completion - end if ok else float("nan")))
    result.note("paper: basic wastefully keeps unicasting into the "
                "partition; the tree side only probes, and both complete "
                "after the repair")
    return result


# ----------------------------------------------------------------------
# E5 — source-server congestion
# ----------------------------------------------------------------------


def _e5_point(protocol: str, k: int, m: int, seed: int, n: int,
              interval: float) -> Dict[str, Any]:
    """One E5 grid point: build, stream, report congestion."""
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=k, hosts_per_cluster=m,
                        backbone="star")
    if protocol == "tree":
        system = BroadcastSystem(built, config=_tree_config(k * m))
    else:
        system = BasicBroadcastSystem(built, config=_basic_config())
    system.start()
    system.broadcast_stream(n, interval=interval, start_at=2.0)
    system.run_until_delivered(n, timeout=600.0)
    report = congestion_report(sim, built.network, system.source_id)
    return dict(hosts=k * m, protocol=protocol,
                source_access_tx_per_msg=report.source_access_tx / n,
                concentration=report.concentration,
                source_peak_queue=report.source_peak_queue)


def run_e5_congestion(seed: int = 4, k: int = 4,
                      ms: Sequence[int] = (2, 4, 8), n: int = 20,
                      interval: float = 1.0,
                      executor: Optional[Executor] = None) -> ExperimentResult:
    """E5: load concentration on the source's access link."""
    result = ExperimentResult(
        "E5", "Source access-link load (congestion)",
        ["hosts", "protocol", "source_access_tx_per_msg", "concentration",
         "source_peak_queue"])
    items = [
        WorkItem(key=("E5", protocol, m), fn=_e5_point,
                 kwargs=dict(protocol=protocol, k=k, m=m, seed=seed, n=n,
                             interval=interval))
        for m in ms for protocol in ("tree", "basic")
    ]
    for row in _map_items(executor, items):
        result.add_row(**row)
    result.note("paper: basic funnels one copy per destination through the "
                "source's server; the tree distributes dissemination")
    return result


# ----------------------------------------------------------------------
# E6 — control traffic independent of the data stream, and tunable
# ----------------------------------------------------------------------


def run_e6_control(seed: int = 5, k: int = 3, m: int = 3,
                   stream_sizes: Sequence[int] = (0, 50, 200),
                   horizon: float = 120.0) -> ExperimentResult:
    """E6: control messages over a fixed horizon vs stream length."""
    result = ExperimentResult(
        "E6", "Control traffic vs number of data messages (fixed horizon)",
        ["data_messages", "protocol", "control_sent", "control_per_s",
         "data_sent"])
    for n in stream_sizes:
        for protocol in ("tree", "basic"):
            sim = Simulator(seed=seed)
            built = wan_of_lans(sim, clusters=k, hosts_per_cluster=m,
                                backbone="line")
            if protocol == "tree":
                system = BroadcastSystem(built, config=_tree_config(k * m))
            else:
                system = BasicBroadcastSystem(built, config=_basic_config())
            system.start()
            if n:
                system.broadcast_stream(
                    n, interval=(horizon * 0.7) / n, start_at=2.0)
            sim.run(until=horizon)
            report = traffic_report(sim)
            result.add_row(data_messages=n, protocol=protocol,
                           control_sent=report.control_sent,
                           control_per_s=report.control_sent / horizon,
                           data_sent=report.data_sent)
    result.note("paper: tree control traffic is independent of the number "
                "of data messages; basic's acks grow linearly with it")
    return result


def run_e6_tuning(seed: int = 5, k: int = 3, m: int = 3,
                  factors: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
                  horizon: float = 120.0) -> ExperimentResult:
    """E6b: the same control traffic under exchange-period scaling."""
    result = ExperimentResult(
        "E6b", "Control traffic vs exchange-period scale factor (no data)",
        ["scale_factor", "control_sent", "control_per_s"])
    for factor in factors:
        sim = Simulator(seed=seed)
        built = wan_of_lans(sim, clusters=k, hosts_per_cluster=m,
                            backbone="line")
        config = _tree_config(k * m).scaled(factor)
        system = BroadcastSystem(built, config=config).start()
        sim.run(until=horizon)
        report = traffic_report(sim)
        result.add_row(scale_factor=factor, control_sent=report.control_sent,
                       control_per_s=report.control_sent / horizon)
    result.note("paper: exchange frequencies 'can be adjusted as desired'")
    return result


# ----------------------------------------------------------------------
# E7 — reliability vs cost under brief connectivity windows
# ----------------------------------------------------------------------


def run_e7_tradeoff(seed: int = 6,
                    factors: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0),
                    window: WindowSpec = WindowSpec(period=30.0, width=4.0,
                                                    first_open=20.0),
                    horizon: float = 150.0, n: int = 10,
                    trials: int = 5) -> ExperimentResult:
    """E7: exploiting brief windows costs control traffic (Section 6).

    Averaged over ``trials`` seeds: a single run's outcome depends on
    how the protocol's (jittered) exchange phases happen to align with
    the connectivity windows.
    """
    from ..analysis.stats import summarize

    result = ExperimentResult(
        "E7", "Reliability vs cost under brief connectivity windows",
        ["scale_factor", "delivered_fraction", "delivered_ci95",
         "control_sent", "expensive_control"])
    for factor in factors:
        fractions = []
        control_acc = expensive_acc = 0.0
        for trial in range(trials):
            sim = Simulator(seed=seed + trial)
            built = wan_of_lans(sim, clusters=2, hosts_per_cluster=2,
                                backbone="line")
            BriefWindowSchedule(sim, built, built.backbone, window,
                                until=horizon)
            config = ProtocolConfig(data_size_bits=SWEEP_DATA_BITS).scaled(factor)
            system = BroadcastSystem(built, config=config).start()
            # The stream happens while the trunk is down.
            system.broadcast_stream(n, interval=0.5, start_at=5.0)
            sim.run(until=horizon)
            records = system.delivery_records()
            cut_hosts = [h for h in built.hosts if str(h).startswith("h1")]
            fractions.append(delivery_fraction(
                {h: records[h] for h in cut_hosts}, n))
            control_acc += traffic_report(sim).control_sent
            expensive_acc += sim.metrics.counter(
                "net.h2h.recv.expensive.kind.control").value
        summary = summarize(fractions)
        result.add_row(scale_factor=factor,
                       delivered_fraction=summary.mean,
                       delivered_ci95=summary.ci95_half_width,
                       control_sent=control_acc / trials,
                       expensive_control=expensive_acc / trials)
    result.note("paper Section 6: more frequent exchange exploits brief "
                "windows better, at higher (control) cost")
    return result


# ----------------------------------------------------------------------
# E8 — Figure 3.1: host-level broadcast vs the multicast lower bound
# ----------------------------------------------------------------------


def run_e8_fig31(seed: int = 7, n: int = 20, interval: float = 1.0,
                 warmup: int = 5) -> ExperimentResult:
    """E8: link traversals per message on the Figure 3.1 diamond."""
    result = ExperimentResult(
        "E8", "Figure 3.1: link traversals per data message",
        ["scheme", "link_traversals_per_msg"])
    # Server multicast lower bound: every link exactly once.
    sim0 = Simulator(seed=seed)
    built0 = figure_3_1(sim0)
    lower_bound = len(built0.network.links)
    result.add_row(scheme="server multicast (lower bound)",
                   link_traversals_per_msg=float(lower_bound))
    for protocol in ("tree", "basic"):
        sim = Simulator(seed=seed)
        built = figure_3_1(sim)
        if protocol == "tree":
            system = BroadcastSystem(built, config=ProtocolConfig())
        else:
            system = BasicBroadcastSystem(built)
        system.start()
        ok, _, snapshot, _ = _run_stream(system, n, interval, warmup,
                                         timeout=300.0)
        # Count only data-message traversals (control excluded to match
        # the figure's argument about a single broadcast message).
        data_tx = snapshot.delta(sim)["net.link_tx.kind.data"]
        result.add_row(scheme=protocol, link_traversals_per_msg=data_tx / n)
    result.note("paper Section 3: without programmable servers no protocol "
                "reaches the in-network lower bound (6 here); host-level "
                "schemes traverse s1-s4 twice (8)")
    return result


# ----------------------------------------------------------------------
# E9 — Figure 4.1: non-neighbor gap filling under source isolation
# ----------------------------------------------------------------------


def run_e9_fig41(seed: int = 8) -> ExperimentResult:
    """E9: i={1,3}, j={2,3}, source isolated; both must converge."""
    from ..core.wire import DataMsg
    from ..net import HostId

    result = ExperimentResult(
        "E9", "Figure 4.1: non-neighbor gap filling with the source isolated",
        ["host", "before", "after", "gap_supplier", "reattached"])
    sim = Simulator(seed=seed)
    built = figure_4_1(sim)
    config = ProtocolConfig(gapfill_nonneighbor_period=5.0,
                            info_inter_period=3.0,
                            parent_timeout_inter=10_000.0)
    system = BroadcastSystem(built, source=HostId("s"), config=config).start()
    s = system.source
    host_i = system.hosts[HostId("i")]
    host_j = system.hosts[HostId("j")]

    def seed_state() -> None:
        # Source has generated 1..3; i saw 1,3; j saw 2,3; both are
        # children of s in the parent graph (the Figure 4.1 state).
        for _ in range(3):
            s.broadcast()
        for host in (host_i, host_j):
            host.parent = s.me
            host._arm_parent_timer()
            s.children.add(host.me)
            s._child_since[host.me] = sim.now
        host_i._on_data(s.store[1], s.me)
        host_i._on_data(s.store[3], s.me)
        host_j._on_data(s.store[2], s.me)
        host_j._on_data(s.store[3], s.me)

    sim.schedule_at(0.5, seed_state)

    def isolate_source() -> None:
        built.network.set_link_state("ss", "si", up=False)
        built.network.set_link_state("ss", "sj", up=False)
        built.network.set_link_state("s", "ss", up=False)

    sim.schedule_at(1.0, isolate_source)
    before = {}
    sim.schedule_at(1.1, lambda: before.update(
        {"i": sorted(host_i.info), "j": sorted(host_j.info)}))
    sim.run(until=60.0)
    for name, host in (("i", host_i), ("j", host_j)):
        missing = [seq for seq in (1, 2, 3) if seq not in before.get(name, [])]
        supplier = None
        for seq in missing:
            record = host.deliveries.get(seq)
            if record is not None:
                supplier = str(record.supplier)
        result.add_row(host=name, before=str(before.get(name)),
                       after=str(sorted(host.info)),
                       gap_supplier=supplier or "-",
                       reattached=host.parent != s.me)
    result.note("paper Section 4.4: neither INFO set precedes the other, so "
                "no re-parenting happens; only non-neighbor gap filling can "
                "reconcile i and j while s is unreachable")
    return result


# ----------------------------------------------------------------------
# E10 — ablations: cluster knowledge modes and the delay optimization
# ----------------------------------------------------------------------


def run_e10_ablation(seed: int = 9, k: int = 3, m: int = 3, n: int = 30,
                     interval: float = 1.0, churn: bool = True) -> ExperimentResult:
    """E10: dynamic vs static vs no cluster knowledge; II.3 on/off."""
    result = ExperimentResult(
        "E10", "Ablations under backbone churn",
        ["variant", "delivered", "inter_cluster_per_msg", "delay_mean"])
    variants = [
        ("dynamic clusters (paper)", {}),
        ("static clusters", {"cluster_mode": ClusterMode.STATIC}),
        ("no cluster info (singletons)", {"cluster_mode": ClusterMode.SINGLETON}),
        ("no delay optimization (II.3 off)",
         {"enable_delay_optimization": False}),
    ]
    for label, overrides in variants:
        sim = Simulator(seed=seed)
        built = wan_of_lans(sim, clusters=k, hosts_per_cluster=m,
                            backbone="ring")
        flapper = None
        if churn:
            flapper = LinkFlapper(sim, built.network, built.backbone,
                                  mean_up=25.0, mean_down=4.0).start()
        config = dataclasses.replace(_tree_config(k * m), **overrides)
        system = BroadcastSystem(built, config=config).start()
        system.broadcast_stream(n, interval=interval, start_at=2.0)
        system.run_until_delivered(n, timeout=400.0)
        if flapper:
            flapper.stop()
        records = system.delivery_records()
        cost = cost_report(sim, n)
        delays = system_delay_stats(records, system.source_id)
        result.add_row(variant=label,
                       delivered=delivery_fraction(records, n, system.source_id),
                       inter_cluster_per_msg=cost.inter_cluster_data_per_msg,
                       delay_mean=delays.mean)
    result.note("paper Section 6: static cluster knowledge works 'with less "
                "satisfying performance'; no knowledge at all still works")
    return result


# ----------------------------------------------------------------------
# E11 — Figure 3.2: the parent graph induces a cluster tree
# ----------------------------------------------------------------------


def run_e11_fig32(seed: int = 10, n: int = 10) -> ExperimentResult:
    """E11: quiescent structure checks on the Figure 3.2 topology."""
    result = ExperimentResult(
        "E11", "Figure 3.2: quiescent host parent graph induces a cluster tree",
        ["check", "violations"])
    sim = Simulator(seed=seed)
    built = figure_3_2(sim)
    system = BroadcastSystem(built, config=_tree_config(len(built.hosts))).start()
    system.broadcast_stream(n, interval=1.0, start_at=2.0)
    system.run_until_delivered(n, timeout=300.0)
    quiesced = run_to_quiescence(system, stable_window=15.0, timeout=200.0)
    result.add_row(check="reached quiescence", violations=0 if quiesced else 1)
    violations = check_all(system, quiescent=True)
    result.add_row(check="all invariants", violations=len(violations))
    for violation in violations:
        result.note(violation)
    leaders = true_leaders(system)
    result.add_row(check="one leader per cluster",
                   violations=sum(1 for ls in leaders.values() if len(ls) != 1))
    return result


# ----------------------------------------------------------------------
# E12 — comparison against anti-entropy epidemic broadcast
# ----------------------------------------------------------------------


def run_e12_epidemic(seed: int = 11, k: int = 3, m: int = 3, n: int = 20,
                     interval: float = 2.0, warmup: int = 5) -> ExperimentResult:
    """E12: tree vs basic vs epidemic on cost and delay."""
    result = ExperimentResult(
        "E12", "Tree vs basic vs anti-entropy epidemic",
        ["protocol", "delivered", "inter_cluster_per_msg", "delay_mean",
         "delay_p99"])
    for protocol in ("tree", "basic", "epidemic"):
        sim = Simulator(seed=seed)
        built = wan_of_lans(sim, clusters=k, hosts_per_cluster=m,
                            backbone="line")
        if protocol == "tree":
            system = BroadcastSystem(built, config=_tree_config(k * m))
        elif protocol == "basic":
            system = BasicBroadcastSystem(built, config=_basic_config())
        else:
            system = EpidemicBroadcastSystem(
                built, config=EpidemicConfig(data_size_bits=SWEEP_DATA_BITS))
        system.start()
        ok, _, snapshot, _ = _run_stream(system, n, interval, warmup,
                                         timeout=600.0)
        cost = cost_report(sim, n, since=snapshot)
        records = system.delivery_records()
        delays = system_delay_stats(records, system.source_id, since_seq=warmup)
        result.add_row(protocol=protocol,
                       delivered=delivery_fraction(records, warmup + n,
                                                   system.source_id),
                       inter_cluster_per_msg=cost.inter_cluster_data_per_msg,
                       delay_mean=delays.mean, delay_p99=delays.p99)
    result.note("epidemic gossip picks partners uniformly at random and so "
                "pays heavily in inter-cluster traffic; the cluster tree "
                "respects link costs")
    return result


# ----------------------------------------------------------------------
# E13 — Section 6 optimization: control-message piggybacking
# ----------------------------------------------------------------------


def run_e13_piggyback(seed: int = 12, k: int = 2, m: int = 3,
                      n_per_source: int = 5,
                      n_sources: Sequence[int] = (1, 2, 3)) -> ExperimentResult:
    """E13: piggybacking's packet/bit savings grow with concurrency."""
    from ..core import MultiSourceBroadcastSystem

    result = ExperimentResult(
        "E13", "Control piggybacking (Section 6 optimization)",
        ["sources", "piggyback", "control_packets", "bundles",
         "delivered"])
    for count in n_sources:
        for piggy in (False, True):
            sim = Simulator(seed=seed)
            built = wan_of_lans(sim, clusters=k, hosts_per_cluster=m,
                                backbone="line")
            sources = built.hosts[:count]
            config = ProtocolConfig.for_scale(
                k * m, enable_piggybacking=piggy,
                data_size_bits=SWEEP_DATA_BITS)
            system = MultiSourceBroadcastSystem(built, sources=sources,
                                                config=config).start()
            for idx, src in enumerate(sources):
                system.broadcast_stream(src, n_per_source, interval=1.0,
                                        start_at=2.0 + 0.3 * idx)
            ok = system.run_until_delivered(
                {s: n_per_source for s in sources}, timeout=400.0)
            result.add_row(
                sources=count, piggyback=piggy,
                control_packets=sim.metrics.counter(
                    "net.h2h.sent.kind.control").value,
                bundles=sim.metrics.counter("piggyback.bundles").value,
                delivered=ok)
    result.note("paper Section 6: 'control messages that are dispatched by "
                "the same host at about the same time can be piggybacked in "
                "one packet' — the win grows with protocol concurrency")
    return result


# ----------------------------------------------------------------------
# E14 — Section 2 extension: multiple-source broadcast
# ----------------------------------------------------------------------


def run_e14_multisource(seed: int = 13, k: int = 2, m: int = 3,
                        n: int = 10) -> ExperimentResult:
    """E14: running several identical single-source protocols."""
    from ..core import MultiSourceBroadcastSystem
    from ..net import HostId

    result = ExperimentResult(
        "E14", "Multiple sources via parallel single-source instances",
        ["sources", "delivered", "control_per_s",
         "inter_cluster_data_per_msg", "delay_mean"])
    for count in (1, 2, 3):
        sim = Simulator(seed=seed)
        built = wan_of_lans(sim, clusters=k, hosts_per_cluster=m,
                            backbone="line")
        sources = built.hosts[:count]
        config = ProtocolConfig.for_scale(k * m,
                                          data_size_bits=SWEEP_DATA_BITS)
        system = MultiSourceBroadcastSystem(built, sources=sources,
                                            config=config).start()
        for idx, src in enumerate(sources):
            system.broadcast_stream(src, n, interval=1.0,
                                    start_at=2.0 + 0.5 * idx)
        ok = system.run_until_delivered({s: n for s in sources}, timeout=400.0)
        horizon = sim.now
        total_msgs = count * n
        delays: List[float] = []
        for src in sources:
            records = system.instances[src].delivery_records()
            for host_id, recs in records.items():
                if host_id != src:
                    delays.extend(r.delay for r in recs)
        from ..analysis import delay_stats
        stats = delay_stats(delays)
        result.add_row(
            sources=count, delivered=ok,
            control_per_s=sim.metrics.counter(
                "net.h2h.sent.kind.control").value / horizon,
            inter_cluster_data_per_msg=sim.metrics.counter(
                "net.h2h.recv.expensive.kind.data").value / total_msgs,
            delay_mean=stats.mean)
    result.note("paper Section 2: 'a multiple-source broadcast can be "
                "performed reliably by running several identical "
                "single-source protocols'; control cost scales with the "
                "instance count, per-message data cost does not")
    return result


# ----------------------------------------------------------------------
# E15 — delay-adaptive re-parenting under changing load (Section 3)
# ----------------------------------------------------------------------


def run_e15_load_adaptation(seed: int = 5, shift_at: float = 40.0,
                            n_phase1: int = 30, n_phase2: int = 40,
                            interval: float = 1.0) -> ExperimentResult:
    """E15: case II option 3 migrates leaders away from loaded paths."""
    from ..net import HostId
    from ..scenarios import apply_load_shift, load_shift_topology

    result = ExperimentResult(
        "E15", "Delay adaptation to changing load (II.3 on/off)",
        ["delay_optimization", "phase2_delay_mean", "phase2_delay_p99",
         "leader_migrated", "delivered"])
    for enabled in (True, False):
        sim = Simulator(seed=seed)
        built = load_shift_topology(sim)
        config = dataclasses.replace(
            ProtocolConfig.for_scale(len(built.hosts)),
            enable_delay_optimization=enabled)
        system = BroadcastSystem(built, source=HostId("src"),
                                 config=config).start()
        shift = apply_load_shift(sim, built, shift_at=shift_at)
        system.broadcast_stream(n_phase1, interval=interval, start_at=5.0)
        sim.run(until=shift_at)
        c_leader_parent_before = {
            str(h): str(system.hosts[h].parent)
            for h in built.clusters[-1]}
        system.broadcast_stream(n_phase2, interval=interval,
                                start_at=shift_at + 1.0)
        ok = system.run_until_delivered(n_phase1 + n_phase2, timeout=600.0)
        shift.generator_phase2.stop()
        c_leader_parent_after = {
            str(h): str(system.hosts[h].parent)
            for h in built.clusters[-1]}
        delays = system_delay_stats(system.delivery_records(),
                                    system.source_id,
                                    since_seq=n_phase1 + 5)
        result.add_row(
            delay_optimization=enabled,
            phase2_delay_mean=delays.mean,
            phase2_delay_p99=delays.p99,
            leader_migrated=c_leader_parent_before != c_leader_parent_after,
            delivered=ok)
    result.note("paper Section 3: 'due to changing message traffic, some "
                "other cluster can become a more desirable parent' — II.3 "
                "is the mechanism that exploits it")
    return result


# ----------------------------------------------------------------------
# E16 — timestamp-based cost inference vs clock skew (Section 2)
# ----------------------------------------------------------------------


def run_e16_clock_skew(seed: int = 14, k: int = 2, m: int = 3, n: int = 15,
                       offsets: Sequence[float] = (0.0, 0.001, 0.01, 0.1, 0.5),
                       ) -> ExperimentResult:
    """E16: how far clocks can drift before transit inference breaks."""
    from ..core import CostBitMode
    from ..net import ClockModel

    result = ExperimentResult(
        "E16", "Host-level cost inference vs clock skew (TIMESTAMP mode)",
        ["max_offset_s", "cluster_accuracy", "delivered",
         "inter_cluster_per_msg"])
    for max_offset in offsets:
        sim = Simulator(seed=seed)
        built = wan_of_lans(sim, clusters=k, hosts_per_cluster=m,
                            backbone="line")
        if max_offset:
            built.network.use_clocks(
                ClockModel(sim).randomize(built.hosts, max_offset=max_offset))
        config = ProtocolConfig.for_scale(
            k * m, cost_bit_mode=CostBitMode.TIMESTAMP,
            data_size_bits=SWEEP_DATA_BITS)
        system = BroadcastSystem(built, config=config).start()
        system.broadcast_stream(n, interval=1.0, start_at=2.0)
        ok = system.run_until_delivered(n, timeout=400.0)
        sim.run(until=sim.now + 15.0)
        # Cluster-view accuracy against ground truth, over ordered pairs
        # where the host has actually heard from the peer.
        truth = {}
        for cluster in built.network.true_clusters():
            for a in cluster:
                for b in built.hosts:
                    truth[(a, b)] = b in cluster
        checked = correct = 0
        for host_id in built.hosts:
            believed = system.hosts[host_id].cluster.members()
            heard = system.hosts[host_id].maps.known_hosts()
            for other in built.hosts:
                if other == host_id or other not in heard:
                    continue
                checked += 1
                if (other in believed) == truth[(host_id, other)]:
                    correct += 1
        cost = cost_report(sim, n)
        result.add_row(
            max_offset_s=max_offset,
            cluster_accuracy=(correct / checked) if checked else float("nan"),
            delivered=ok,
            inter_cluster_per_msg=cost.inter_cluster_data_per_msg)
    result.note("paper Section 2 suggests inferring link class from message "
                "transit times; this works while clock offsets stay below "
                "the cheap/expensive transit gap and degrades beyond it — "
                "delivery is unaffected either way (CLUSTER sets are "
                "advisory)")
    return result


# ----------------------------------------------------------------------
# E17 — design-choice ablations (implementation mechanisms, DESIGN.md §4)
# ----------------------------------------------------------------------


def run_e17_design_ablation(seed: int = 4, k: int = 4, m: int = 4,
                            n: int = 25, interval: float = 1.0,
                            partition: Tuple[float, float] = (5.0, 35.0),
                            horizon: float = 400.0) -> ExperimentResult:
    """E17: what each implementation mechanism buys under mass catch-up.

    The stress regime where the mechanisms were originally needed: two
    of four clusters partitioned mid-stream, then healed — eight hosts
    simultaneously catching up on ~30 full-size data messages through
    56 kbit/s trunks.
    """
    from ..net import PartitionScheduler, host_group

    variants = [
        ("full protocol", {}),
        ("no gap-fill suppression", {"gapfill_suppression": 1e-3}),
        ("tiny inter batch (1)", {"gapfill_batch_limit_inter": 1}),
        ("no child reconcile", {"enable_child_reconcile": False}),
        ("no parent refresh", {"enable_parent_refresh": False}),
    ]
    result = ExperimentResult(
        "E17", "Implementation-mechanism ablations (mass catch-up regime)",
        ["variant", "delivered_fraction", "completion_s", "gapfills",
         "duplicates"])
    for label, overrides in variants:
        sim = Simulator(seed=seed)
        built = wan_of_lans(sim, clusters=k, hosts_per_cluster=m,
                            backbone="line")
        scheduler = PartitionScheduler(sim, built.network)
        cut_hosts = [h for cluster in built.clusters[k // 2:] for h in cluster]
        group = host_group(built.network, cut_hosts) + [
            f"s{i}" for i in range(k // 2, k)]
        scheduler.isolate(group, partition[0], partition[1])
        config = dataclasses.replace(ProtocolConfig.for_scale(k * m),
                                     **overrides)
        system = BroadcastSystem(built, config=config).start()
        system.broadcast_stream(n, interval=interval, start_at=2.0)
        system.run_until_delivered(n, timeout=horizon)
        records = system.delivery_records()
        completion = time_to_full_delivery(records, n, system.source_id)
        result.add_row(
            variant=label,
            delivered_fraction=delivery_fraction(records, n, system.source_id),
            completion_s=completion,
            gapfills=sim.metrics.counter("proto.gapfill.sent").value,
            duplicates=sim.metrics.counter(
                "proto.data.discard.duplicate").value)
    result.note("suppression and batching measurably cut waste and catch-up "
                "time; the reconcile/refresh repairs are defense in depth "
                "for lost-ack races (their original trigger was removed by "
                "the ack-first handshake + frontier rule; see DESIGN.md §4)")
    return result


# ----------------------------------------------------------------------
# E18 — relative reliability (the paper's Section 1 definition)
# ----------------------------------------------------------------------


def run_e18_relative_reliability(
        seed: int = 16,
        factors: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
        window: WindowSpec = WindowSpec(period=40.0, width=10.0,
                                        first_open=20.0),
        horizon: float = 140.0, n: int = 10, trials: int = 5,
        required_window: float = 6.0) -> ExperimentResult:
    """E18: score protocols by opportunities *used*, not messages sent.

    The network offers 10-second connectivity windows.  A (host, seq)
    pair becomes *obligated* once the host has spent >= 6 s connected to
    a holder of that message; relative reliability is the fraction of
    obligations met.  Slow exchange settings miss windows they were
    given — lower relative reliability, not just lower throughput.
    """
    from ..analysis.stats import summarize
    from ..verify import OpportunityAuditor

    result = ExperimentResult(
        "E18", "Relative reliability (Section 1) vs exchange-period scale",
        ["scale_factor", "relative_reliability", "rel_ci95",
         "absolute_delivery", "control_sent"])
    for factor in factors:
        relatives, absolutes, controls = [], [], []
        for trial in range(trials):
            sim = Simulator(seed=seed + trial)
            built = wan_of_lans(sim, clusters=2, hosts_per_cluster=2,
                                backbone="line")
            BriefWindowSchedule(sim, built, built.backbone, window,
                                until=horizon)
            config = ProtocolConfig(data_size_bits=SWEEP_DATA_BITS).scaled(factor)
            system = BroadcastSystem(built, config=config).start()
            auditor = OpportunityAuditor(
                system, sample_period=1.0,
                required_window=required_window).start()
            system.broadcast_stream(n, interval=0.5, start_at=5.0)
            sim.run(until=horizon)
            auditor.stop()
            report = auditor.report()
            relatives.append(report.relative_reliability)
            absolutes.append(report.absolute_delivery)
            controls.append(traffic_report(sim).control_sent)
        rel = summarize(relatives)
        result.add_row(scale_factor=factor,
                       relative_reliability=rel.mean,
                       rel_ci95=rel.ci95_half_width,
                       absolute_delivery=sum(absolutes) / trials,
                       control_sent=sum(controls) / trials)
    result.note("paper Section 1: reliability is 'the degree to which [the "
                "protocol] is capable of utilizing communication "
                "opportunities presented by the dynamically changing "
                "network' — this table measures exactly that")
    return result


# ----------------------------------------------------------------------
# E19 — cost optimality over multi-server clusters
# ----------------------------------------------------------------------


def run_e19_hierarchical(seed: int = 17,
                         shapes: Sequence[Tuple[int, int, int]] = (
                             (2, 2, 2), (3, 2, 2), (3, 3, 1), (4, 2, 1)),
                         n: int = 15, interval: float = 2.0,
                         warmup: int = 5) -> ExperimentResult:
    """E19: the k−1 optimum holds when clusters are multi-server LANs.

    :func:`repro.net.hierarchical_wan` builds clusters that are rings of
    several servers, so intra-cluster paths span multiple cheap hops.
    Cost-bit semantics and the cluster tree must be unaffected: the
    steady-state inter-cluster cost stays at (clusters − 1).
    """
    from ..net import hierarchical_wan

    result = ExperimentResult(
        "E19", "Cost over hierarchical (multi-server) clusters",
        ["clusters", "servers_per_cluster", "hosts_per_server", "hosts",
         "optimal", "tree", "delivered"])
    for clusters, servers, hosts_per in shapes:
        sim = Simulator(seed=seed)
        built = hierarchical_wan(sim, clusters=clusters,
                                 servers_per_cluster=servers,
                                 hosts_per_server=hosts_per,
                                 backbone="line")
        total_hosts = clusters * servers * hosts_per
        system = BroadcastSystem(
            built, config=_tree_config(total_hosts)).start()
        ok, _, snapshot, _ = _run_stream(system, n, interval, warmup,
                                         timeout=600.0)
        cost = cost_report(sim, n, since=snapshot)
        result.add_row(clusters=clusters, servers_per_cluster=servers,
                       hosts_per_server=hosts_per, hosts=total_hosts,
                       optimal=optimal_inter_cluster_cost(clusters),
                       tree=cost.inter_cluster_data_per_msg,
                       delivered=ok)
    result.note("multi-hop cheap paths keep the cost bit clear, so the "
                "cluster tree and its k-1 optimum are topology-shape "
                "independent")
    return result


# ----------------------------------------------------------------------
# E20 — reliability and recovery latency under host churn
# ----------------------------------------------------------------------


def _e20_protocol(protocol: str, seed: int, clusters: int,
                  hosts_per_cluster: int, n: int, interval: float,
                  heal_by: float, mean_up: float, mean_down: float,
                  crash_stable_lag: int,
                  horizon: float) -> List[Dict[str, Any]]:
    """One E20 protocol run; returns the 'all' row plus per-host rows."""
    from ..chaos import ChaosPlan, ChaosSpec, HostChurnSpec
    from ..verify import InvariantMonitor

    n_hosts = clusters * hosts_per_cluster
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=clusters,
                        hosts_per_cluster=hosts_per_cluster,
                        backbone="line")
    monitor = None
    if protocol == "tree":
        system = BroadcastSystem(built, config=_tree_config(
            n_hosts, crash_stable_lag=crash_stable_lag)).start()
        monitor = InvariantMonitor(system, sample_period=1.0,
                                   stable_window=20.0).start()
    else:
        system = BasicBroadcastSystem(built, config=_basic_config(
            crash_stable_lag=crash_stable_lag)).start()
    churned = tuple(str(h) for h in built.hosts
                    if h != system.source_id)
    ChaosPlan(sim, system, ChaosSpec(
        heal_by=heal_by,
        host_churn=(HostChurnSpec(churned, mean_up=mean_up,
                                  mean_down=mean_down),))).start()
    system.broadcast_stream(n, interval=interval, start_at=2.0)
    sim.run(until=heal_by + 1.0)  # let the full churn window play out
    system.run_until_delivered(n, timeout=horizon)
    stable: Any
    if monitor is not None:
        monitor.stop()
        stable = len(monitor.report().stable_violations)
    else:
        stable = "-"  # tree-structure invariants do not apply

    recoveries: Dict[str, List[float]] = {}
    for record in sim.trace.records(kind="host.recovery_delivery"):
        recoveries.setdefault(record.source, []).append(
            record.fields["elapsed"])
    crash_counts: Dict[str, int] = {}
    for record in sim.trace.records(kind="host.crash"):
        crash_counts[record.source] = crash_counts.get(record.source, 0) + 1

    all_times = [t for times in recoveries.values() for t in times]
    rows: List[Dict[str, Any]] = [dict(
        protocol=protocol, scope="all",
        delivered=delivery_fraction(system.delivery_records(), n,
                                    system.source_id),
        crashes=sum(crash_counts.values()),
        recovery_mean_s=(sum(all_times) / len(all_times)
                         if all_times else float("nan")),
        recovery_max_s=max(all_times) if all_times else float("nan"),
        stable_violations=stable)]
    for host in churned:
        times = recoveries.get(host, [])
        delivered = sum(1 for seq in range(1, n + 1)
                        if seq in system.hosts[HostId(host)].deliveries)
        rows.append(dict(
            protocol=protocol, scope=host, delivered=delivered / n,
            crashes=crash_counts.get(host, 0),
            recovery_mean_s=(sum(times) / len(times)
                             if times else float("nan")),
            recovery_max_s=max(times) if times else float("nan"),
            stable_violations="-"))
    return rows


def run_e20_host_churn(seed: int = 18, clusters: int = 3,
                       hosts_per_cluster: int = 2, n: int = 20,
                       interval: float = 1.0, heal_by: float = 60.0,
                       mean_up: float = 25.0, mean_down: float = 5.0,
                       crash_stable_lag: int = 2,
                       horizon: float = 400.0,
                       executor: Optional[Executor] = None) -> ExperimentResult:
    """E20: host crash/recovery churn — tree vs the basic algorithm.

    Every non-source host randomly crashes (losing volatile state beyond
    its stable prefix) and recovers while the source streams ``n``
    messages; all churn heals by ``heal_by``.  The decisive asymmetry:
    a message a basic-algorithm receiver *acknowledged* and then lost in
    a crash is gone for good — the source discarded the unacked entry
    and never retransmits — while a recovering tree host re-attaches and
    gap-fills everything above its stable prefix.  Recovery time is
    measured crash → first post-recovery delivery.
    """
    result = ExperimentResult(
        "E20", "Reliability and recovery latency under host churn",
        ["protocol", "scope", "delivered", "crashes",
         "recovery_mean_s", "recovery_max_s", "stable_violations"])
    items = [
        WorkItem(key=("E20", protocol), fn=_e20_protocol,
                 kwargs=dict(protocol=protocol, seed=seed, clusters=clusters,
                             hosts_per_cluster=hosts_per_cluster, n=n,
                             interval=interval, heal_by=heal_by,
                             mean_up=mean_up, mean_down=mean_down,
                             crash_stable_lag=crash_stable_lag,
                             horizon=horizon))
        for protocol in ("tree", "basic")
    ]
    for rows in _map_items(executor, items):
        for row in rows:
            result.add_row(**row)
    result.note("recovery_*_s is crash -> first post-recovery delivery; a "
                "basic receiver's acked-then-lost messages are never "
                "retransmitted, so the tree's delivered fraction is >= "
                "basic's under identical, seed-matched churn")
    return result


#: E21 operating points: (label, trunk loss, corrupt, delay_prob, delay,
#: replay_prob).  Ordered mildest -> harshest; the last two are the
#: "harshest points" the acceptance criterion names.
E21_POINTS: Tuple[Tuple[str, float, float, float, float, float], ...] = (
    ("clean", 0.00, 0.00, 0.0, 0.0, 0.00),
    ("loss", 0.08, 0.00, 0.0, 0.0, 0.00),
    ("corrupt", 0.00, 0.10, 0.0, 0.0, 0.05),
    ("skew", 0.00, 0.00, 0.3, 0.8, 0.00),
    ("loss+corrupt", 0.10, 0.08, 0.0, 0.0, 0.05),
    ("harsh", 0.15, 0.10, 0.3, 0.8, 0.05),
)


def _e21_point(point: Sequence, mode: str, seed: int, clusters: int,
               hosts_per_cluster: int, n: int, interval: float,
               heal_by: float, measure_at: float,
               horizon: float) -> Dict[str, Any]:
    """One E21 grid point: one operating point under one control plane."""
    from ..chaos import ChaosPlan, ChaosSpec, HostOutageSpec, PacketFaultSpec
    from ..verify import InvariantMonitor

    n_hosts = clusters * hosts_per_cluster
    label, loss, corrupt, delay_prob, delay, replay = point
    sim = Simulator(seed=seed)
    built = wan_of_lans(
        sim, clusters=clusters, hosts_per_cluster=hosts_per_cluster,
        backbone="line", expensive=expensive_spec(loss_prob=loss))
    config = _tree_config(n_hosts, crash_stable_lag=1,
                          adaptive=(mode == "adaptive"))
    system = BroadcastSystem(built, config=config).start()
    monitor = InvariantMonitor(system, sample_period=1.0,
                               stable_window=20.0).start()
    # Two mid-stream outages give every point a recovery probe; ends
    # stay well before heal_by so recovery happens *under* the packet
    # faults, where the control planes differ.
    victims = [str(h) for h in built.hosts if h != system.source_id]
    faults: Tuple[PacketFaultSpec, ...] = ()
    if corrupt or delay_prob or replay:
        faults = (PacketFaultSpec(
            start=2.0, end=heal_by, corrupt_prob=corrupt,
            delay_prob=delay_prob, delay=delay,
            replay_prob=replay, replay_lag=2.0),)
    ChaosPlan(sim, system, ChaosSpec(
        heal_by=heal_by,
        host_outages=(HostOutageSpec(victims[1], 10.0, 14.0),
                      HostOutageSpec(victims[-1], 18.0, 22.0)),
        packet_faults=faults)).start()
    system.broadcast_stream(n, interval=interval, start_at=2.0)
    sim.run(until=measure_at)
    delivered = delivery_fraction(system.delivery_records(), n,
                                  system.source_id)
    system.run_until_delivered(n, timeout=horizon)
    monitor.stop()
    times = monitor.report().recovery_times()
    metrics = sim.metrics
    return dict(
        point=label, mode=mode, delivered=delivered,
        recovery_mean_s=(sum(times) / len(times)
                         if times else float("nan")),
        control_msgs=metrics.counter("net.h2h.sent.kind.control").value,
        corrupt_dropped=metrics.counter(
            "proto.wire.corrupt_dropped").value,
        dup_suppressed=metrics.counter(
            "proto.wire.dup_suppressed").value,
        attach_timeouts=metrics.counter("proto.attach.timeouts").value)


def _e21_items(seed: int, clusters: int, hosts_per_cluster: int, n: int,
               interval: float, heal_by: float, measure_at: float,
               horizon: float,
               points: Optional[Sequence] = None) -> List[WorkItem]:
    """The seed-matched (point, mode) grid E21 and E22 both fan out."""
    return [
        WorkItem(key=("E21", point[0], mode), fn=_e21_point,
                 kwargs=dict(point=tuple(point), mode=mode, seed=seed,
                             clusters=clusters,
                             hosts_per_cluster=hosts_per_cluster, n=n,
                             interval=interval, heal_by=heal_by,
                             measure_at=measure_at, horizon=horizon))
        for point in (points if points is not None else E21_POINTS)
        for mode in ("fixed", "adaptive")
    ]


def run_e21_adversarial_timing(seed: int = 21, clusters: int = 3,
                               hosts_per_cluster: int = 2, n: int = 30,
                               interval: float = 1.0, heal_by: float = 40.0,
                               measure_at: float = 60.0,
                               horizon: float = 600.0,
                               points: Optional[Sequence] = None,
                               executor: Optional[Executor] = None,
                               ) -> ExperimentResult:
    """E21: adversarial packet timing — fixed vs adaptive control plane.

    A loss x corruption x delay-skew sweep: trunks drop packets, a
    :class:`~repro.chaos.PacketChaos` injector corrupts, delays, and
    replays wire messages at every host, and two scheduled host outages
    provide a recovery-time probe.  Each operating point runs the
    *identical seed* under the fixed-timeout config and under
    ``adaptive=True`` (RTT-estimated deadlines, backoff with jitter,
    congestion-aware gap filling), so the only difference is the
    control plane.  ``delivered`` is the system-wide delivered fraction
    at ``measure_at`` (before unlimited catch-up time); recovery is
    crash -> first post-recovery delivery via the InvariantMonitor.
    """
    result = ExperimentResult(
        "E21", "Adversarial packet timing: fixed vs adaptive control plane",
        ["point", "mode", "delivered", "recovery_mean_s", "control_msgs",
         "corrupt_dropped", "dup_suppressed", "attach_timeouts"])
    items = _e21_items(seed, clusters, hosts_per_cluster, n, interval,
                       heal_by, measure_at, horizon, points)
    for row in _map_items(executor, items):
        result.add_row(**row)
    result.note("seed-matched pairs: each point runs the identical seed, "
                "topology, chaos schedule, and workload under both control "
                "planes; delivered is the fraction at measure_at, recovery "
                "is crash -> first post-recovery delivery")
    return result


# ----------------------------------------------------------------------
# E22 — execution engine: wall-clock speedup and determinism parity
# ----------------------------------------------------------------------


def run_e22_parallel_speedup(seed: int = 21,
                             jobs_list: Sequence[int] = (1, 2, 4),
                             clusters: int = 3, hosts_per_cluster: int = 2,
                             n: int = 30, interval: float = 1.0,
                             heal_by: float = 40.0, measure_at: float = 60.0,
                             horizon: float = 600.0,
                             points: Optional[Sequence] = None,
                             ) -> ExperimentResult:
    """E22: engine speedup + serial/parallel parity on the E21 grid.

    Runs the identical E21 work-item grid under ``jobs=1`` (the serial
    reference) and each requested worker count, comparing wall-clock
    time *and* asserting row-for-row equality against the serial rows.
    ``speedup`` is serial wall / parallel wall; ``rows_match_serial``
    is the determinism-parity bit the acceptance gate checks.  Unlike
    every other E-series table, the wall columns are hardware-dependent
    — only the parity column is deterministic.
    """
    from ..exec import make_executor

    result = ExperimentResult(
        "E22", "Execution engine: speedup and determinism parity (E21 grid)",
        ["jobs", "grid_points", "wall_s", "speedup", "rows_match_serial"])
    items = _e21_items(seed, clusters, hosts_per_cluster, n, interval,
                       heal_by, measure_at, horizon, points)
    serial_rows: Optional[List[Dict[str, Any]]] = None
    serial_wall = float("nan")
    for jobs in jobs_list:
        executor = make_executor(jobs)
        start = time.perf_counter()
        rows = _map_items(executor, items)
        wall = time.perf_counter() - start
        if serial_rows is None:
            # First entry is the reference; jobs_list conventionally
            # starts at 1 so the reference *is* the serial path.
            serial_rows, serial_wall = rows, wall
        # repr() is float-exact and nan-safe, unlike ==.
        result.add_row(jobs=jobs, grid_points=len(items), wall_s=wall,
                       speedup=serial_wall / wall,
                       rows_match_serial=(repr(rows) == repr(serial_rows)))
    result.note(f"host has {os.cpu_count()} CPU core(s); speedup saturates "
                "at the core count, parity must hold everywhere")
    return result


# ----------------------------------------------------------------------
# E23 — chaos fuzzing: campaign verdicts and minimal-repro shrinking
# ----------------------------------------------------------------------


def run_e23_fuzz_campaign(seed: int = 7, trials: int = 10,
                          protocols: Sequence[str] = ("tree", "basic"),
                          max_shrink_evals: int = 120,
                          executor: Optional[Executor] = None
                          ) -> ExperimentResult:
    """E23: seed-deterministic chaos fuzzing — tree vs the basic algorithm.

    Runs the same derived-seed fuzz campaign (random topology, workload,
    and composed fault schedule per trial; every fault heals by the
    trial's horizon) against both protocols.  The paper's protocol must
    come out clean on every trial — eventual delivery after healing is
    its core claim — while the basic algorithm's acked-then-lost
    messages under host crashes surface as ``no_eventual_delivery``
    verdicts.  Each failure is delta-debugged to a minimal fault
    schedule; ``shrink_ratio_mean`` is shrunk/original fault-event
    count and ``min_repro_events`` the smallest repro found.
    """
    from ..fuzz import FuzzOptions, run_campaign

    result = ExperimentResult(
        "E23", "Chaos fuzzing: campaign verdicts and minimal repros",
        ["protocol", "trials", "clean", "stable_violation",
         "no_eventual_delivery", "shrink_ratio_mean", "min_repro_events"])
    for protocol in protocols:
        summary = run_campaign(
            trials=trials, base_seed=seed,
            options=FuzzOptions(protocol=protocol),
            executor=executor, max_shrink_evals=max_shrink_evals)
        counts = summary.counts()
        ratios = summary.shrink_ratios()
        result.add_row(
            protocol=protocol, trials=trials, clean=summary.clean,
            stable_violation=counts.get("stable_violation", 0),
            no_eventual_delivery=counts.get("no_eventual_delivery", 0),
            shrink_ratio_mean=(sum(ratios) / len(ratios)
                               if ratios else float("nan")),
            min_repro_events=(summary.min_repro_events()
                              if summary.min_repro_events() is not None
                              else "-"))
    result.note("per-trial seeds are SHA-256-derived from the base seed, "
                "so campaigns are reproducible and serial == parallel; "
                "failures replay via `python -m repro fuzz replay`")
    return result


def _e24_placements(seed: int, clusters: int, hosts_per_cluster: int
                    ) -> Tuple[List[str], List[str]]:
    """Seed-matched adversary slots: (interior hosts, leaf hosts).

    Derived from the tree the paper's protocol actually forms under
    this seed with no faults: *interior* hosts are non-source hosts
    that serve as somebody's parent (they forward data, so their
    misbehavior sits on a live branch), *leaves* forward nothing.  The
    same slots are reused for every protocol, so the sweep compares
    protocols under identical adversary placement.
    """
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=clusters,
                        hosts_per_cluster=hosts_per_cluster,
                        backbone="line")
    system = BroadcastSystem(
        built, config=_tree_config(clusters * hosts_per_cluster)).start()
    run_to_quiescence(system)
    parents = {str(p) for p in system.parent_edges().values()
               if p is not None}
    source = str(system.source_id)
    hosts = sorted(str(h) for h in built.hosts if str(h) != source)
    interior = [h for h in hosts if h in parents]
    leaves = [h for h in hosts if h not in parents]
    return interior, leaves


def _e24_slots(placement: str, k: int, interior: List[str],
               leaves: List[str]) -> Tuple[str, ...]:
    """The first ``k`` adversary hosts for a placement, deterministically
    (filled from the other pool when one runs short)."""
    pool = (interior + leaves) if placement == "interior" else (
        leaves + interior)
    return tuple(sorted(pool[:k]))


def _e24_point(protocol: str, seed: int, clusters: int,
               hosts_per_cluster: int, n: int, interval: float,
               persona: str, placement: str,
               adversary_hosts: Tuple[str, ...],
               start_at: float, horizon: float) -> Dict[str, Any]:
    """One E24 grid point: one protocol under one adversary deployment."""
    from ..chaos import AdversarySpec, ChaosPlan, ChaosSpec
    from ..verify import (InvariantMonitor, classify_containment,
                          classify_spans, worst_status)

    n_hosts = clusters * hosts_per_cluster
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=clusters,
                        hosts_per_cluster=hosts_per_cluster,
                        backbone="line")
    monitor = None
    if protocol == "tree":
        system: Any = BroadcastSystem(
            built, config=_tree_config(n_hosts)).start()
        monitor = InvariantMonitor(system, sample_period=1.0,
                                   stable_window=20.0).start()
    elif protocol == "basic":
        system = BasicBroadcastSystem(built, config=_basic_config()).start()
    else:
        system = EpidemicBroadcastSystem(built).start()
    if adversary_hosts:
        ChaosPlan(sim, system, ChaosSpec(
            heal_by=start_at + 1.0,
            adversaries=tuple(AdversarySpec(host=h, persona=persona,
                                            start=start_at)
                              for h in adversary_hosts))).start()
    correct = [h for h in built.hosts if str(h) not in set(adversary_hosts)]
    system.broadcast_stream(n, interval=interval, start_at=2.0)
    correct_ok = system.run_until_delivered(
        n, timeout=horizon, hosts=correct if adversary_hosts else None)

    containment: Any = "-"
    contained = broken = 0
    if monitor is not None:
        # settle one stable window so end-of-run streaks are judged
        sim.run(until=sim.now + 21.0)
        monitor.stop()
        results = (classify_spans(monitor.report().spans, adversary_hosts)
                   + classify_containment(system, adversary_hosts))
        containment = worst_status(results)
        adv = set(adversary_hosts)
        for result in results:
            for hosts in result.violations:
                if any(h in adv for h in hosts):
                    contained += 1
                else:
                    broken += 1

    delivered_pairs = sum(
        1 for host in correct for seq in range(1, n + 1)
        if seq in system.hosts[host].deliveries)
    return dict(
        protocol=protocol, k=len(adversary_hosts),
        persona=persona if adversary_hosts else "-",
        placement=placement if adversary_hosts else "-",
        adversaries=",".join(adversary_hosts) or "-",
        correct_delivered=delivered_pairs / (len(correct) * n),
        correct_ok=correct_ok, containment=containment,
        contained=contained if monitor is not None else "-",
        broken=broken if monitor is not None else "-")


def run_e24_adversary_containment(
        seed: int = 24, clusters: int = 3, hosts_per_cluster: int = 2,
        n: int = 12, interval: float = 1.0, ks: Sequence[int] = (0, 1, 2),
        personas: Optional[Sequence[str]] = None,
        start_at: float = 4.0, horizon: float = 120.0,
        executor: Optional[Executor] = None) -> ExperimentResult:
    """E24: invariant containment under k misbehaving hosts.

    Seed-matched sweep of tree vs basic vs epidemic under ``k`` in
    ``ks`` adversarial hosts running each persona
    (:data:`repro.chaos.PERSONAS`), placed either *interior* (hosts the
    fault-free tree uses as parents — their lies sit on a live
    forwarding branch) or at *leaves* (structurally harmless seats).
    Personas activate at ``start_at`` and never heal; correctness is
    measured over the correct hosts only.  ``containment`` classifies
    every observed §4.3 invariant violation (tree only): damage that
    stopped at the adversary set reads ``holds_correct_only``,
    violations among correct hosts read ``broken``.  The headline
    asymmetry: placement, not count, decides the outcome — in the
    default two-host-cluster topology the cluster leader is a cut
    vertex, so an interior data black hole starves its correct subtree
    (``correct_ok`` False with every structural invariant still
    ``holds_globally``: the damage is purely data-plane), while the
    same persona at a leaf — or any persona against the source-direct
    basic algorithm or the redundant epidemic baseline — hurts nobody
    but itself.
    """
    from ..chaos import PERSONAS

    chosen = tuple(personas) if personas is not None else PERSONAS
    interior, leaves = _e24_placements(seed, clusters, hosts_per_cluster)
    result = ExperimentResult(
        "E24", "Adversarial hosts: correct-host delivery and containment",
        ["protocol", "k", "persona", "placement", "adversaries",
         "correct_delivered", "correct_ok", "containment", "contained",
         "broken"])
    items = []
    for protocol in ("tree", "basic", "epidemic"):
        for k in ks:
            if k == 0:
                grid: List[Tuple[str, str]] = [("-", "-")]
            else:
                grid = [(persona, placement) for persona in chosen
                        for placement in ("interior", "leaf")]
            for persona, placement in grid:
                hosts = (_e24_slots(placement, k, interior, leaves)
                         if k else ())
                items.append(WorkItem(
                    key=("E24", protocol, k, persona, placement),
                    fn=_e24_point,
                    kwargs=dict(protocol=protocol, seed=seed,
                                clusters=clusters,
                                hosts_per_cluster=hosts_per_cluster,
                                n=n, interval=interval, persona=persona,
                                placement=placement, adversary_hosts=hosts,
                                start_at=start_at, horizon=horizon)))
    for row in _map_items(executor, items):
        result.add_row(**row)
    result.note("adversary slots are derived from the fault-free tree "
                f"(interior: {','.join(interior) or '-'}; leaves: "
                f"{','.join(leaves) or '-'}) and shared across protocols; "
                "personas never heal, so verdicts cover correct hosts only "
                "and 'containment' is worst-case over all monitored "
                "invariants (tree protocol only)")
    return result


#: E25 utilization fractions of the measured capacity, mild -> overload
E25_UTILIZATIONS: Tuple[float, ...] = (0.4, 1.5, 3.0)

#: protocols swept by E25; "tree+shed" is the tree protocol with bounded
#: resources, load shedding, and admission control switched on
E25_PROTOCOLS: Tuple[str, ...] = ("tree", "tree+shed", "basic", "epidemic")


def _e25_resources(capacity: float) -> ResourceConfig:
    """The bounded-resource policy E25 gives the shedding tree.

    Admission is anchored at the measured capacity: the token bucket
    passes what the slowest pipeline stage can actually service and
    rejects the overload at the source, before it ever costs a trunk
    transmission.  Store/fill-table/outbound bounds catch what admission
    lets through in bursts.
    """
    return ResourceConfig(store_limit=64, fill_table_limit=512,
                          outbound_queue_limit=32,
                          admission_rate=capacity, admission_burst=8)


def _e25_system(protocol: str, built, n_hosts: int, capacity: float):
    """Build and start one E25 system (dispatch mirrors `_e24_point`)."""
    if protocol == "tree":
        return BroadcastSystem(built, config=_tree_config(n_hosts)).start()
    if protocol == "tree+shed":
        return BroadcastSystem(built, config=_tree_config(
            n_hosts, resources=_e25_resources(capacity))).start()
    if protocol == "basic":
        return BasicBroadcastSystem(built, config=_basic_config()).start()
    return EpidemicBroadcastSystem(
        built, config=EpidemicConfig(data_size_bits=SWEEP_DATA_BITS)).start()


def _e25_capacity(protocol: str, seed: int, clusters: int,
                  hosts_per_cluster: int, probe_n: int) -> float:
    """Closed-loop capacity probe for one (unshed) protocol family."""
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=clusters,
                        hosts_per_cluster=hosts_per_cluster, backbone="line")
    system = _e25_system(protocol, built, clusters * hosts_per_cluster, 0.0)
    return measure_capacity(system, n=probe_n)


def _e25_point(protocol: str, shape: str, utilization: float,
               capacity: float, seed: int, clusters: int,
               hosts_per_cluster: int, duration: float, drain: float,
               churn: bool, slo: Tuple[Optional[float], Optional[float],
                                       Optional[float]]) -> Dict[str, Any]:
    """One E25 grid point: one protocol under one sustained load window."""
    from ..chaos import ChaosPlan, ChaosSpec, HostChurnSpec
    from ..verify import OverloadMonitor

    n_hosts = clusters * hosts_per_cluster
    sim = Simulator(seed=seed)
    built = wan_of_lans(sim, clusters=clusters,
                        hosts_per_cluster=hosts_per_cluster, backbone="line")
    system = _e25_system(protocol, built, n_hosts, capacity)
    monitor = OverloadMonitor(sim, built.network, system=system).start()

    start_at = 5.0  # let the tree attach before the load window opens
    if churn:
        churned = tuple(str(h) for h in built.hosts
                        if h != system.source_id)
        ChaosPlan(sim, system, ChaosSpec(
            heal_by=start_at + duration,
            host_churn=(HostChurnSpec(churned, mean_up=25.0,
                                      mean_down=5.0),))).start()
    counting = CountingSource(system.source)
    offered = schedule_open_loop(sim, counting, shape,
                                 rate=utilization * capacity,
                                 duration=duration, start_at=start_at)
    sim.run(until=start_at + duration)
    monitor.note_load_end()

    admitted = counting.admitted
    delivered_ok = system.run_until_delivered(admitted, timeout=drain)
    if delivered_ok:
        sim.run(until=sim.now + 10.0)  # let in-flight control traffic land
    monitor.stop()
    report = monitor.report(delivered_ok)

    stats = delivery_latency_stats(system.delivery_records(),
                                   system.source_id, upto_seq=admitted)
    slo_ok, failures = SloSpec(*slo).evaluate(stats)
    shed = int(sum(sim.metrics.counter(f"proto.shed.{buffer}").value
                   for buffer in ("store", "fill_table", "outbound")))
    rejected = int(
        sim.metrics.counter("proto.source.admission_rejected").value)
    pressure = link_pressure(built.network.links.values())
    worst = pressure[0] if pressure else None
    return dict(
        protocol=protocol, shape=shape, util=utilization,
        churn="yes" if churn else "-",
        offered=offered, admitted=admitted, delivered_ok=delivered_ok,
        p50_s=stats.p50, p99_s=stats.p99, p999_s=stats.p999,
        slo="pass" if slo_ok else "; ".join(failures),
        verdict=report.verdict, peak_queue=report.peak_queue,
        peak_store=report.peak_store, shed=shed, rejected=rejected,
        worst_link=(f"{worst['link']}:{worst['overflows']}" if worst
                    and worst["overflows"] else "-"))


def run_e25_saturation(
        seed: int = 25, clusters: int = 3, hosts_per_cluster: int = 2,
        duration: float = 30.0,
        utilizations: Sequence[float] = E25_UTILIZATIONS,
        shapes: Sequence[str] = ("poisson", "bursty"),
        protocols: Sequence[str] = E25_PROTOCOLS,
        drain: float = 60.0,
        slo: Tuple[Optional[float], Optional[float],
                   Optional[float]] = (10.0, 60.0, 120.0),
        probe_n: int = 60,
        executor: Optional[Executor] = None) -> ExperimentResult:
    """E25: saturation sweep — overload, shedding, graceful degradation.

    Phase one probes each protocol family's closed-loop capacity; phase
    two offers sustained open-loop load at ``utilizations`` fractions of
    that capacity for ``duration`` seconds, in each arrival ``shape``,
    then gives the system ``drain`` seconds to deliver everything it
    admitted.  :class:`~repro.verify.OverloadMonitor` classifies every
    run ``stable`` / ``degraded_recovering`` / ``collapsed``; delivery
    latency of the admitted window is scored against the p50/p99/p999
    ``slo`` gates.  The headline contrast: past saturation the unbounded
    tree ``collapsed`` (drop-tail trunk losses leave recovery to
    rate-limited gap fills that never catch up), while ``tree+shed`` —
    identical protocol, bounded buffers plus capacity-anchored admission
    — rejects the excess at the source and comes back
    (``degraded_recovering``).  One extra point composes overload with
    E20-style host churn on the shedding tree (the epidemic baseline
    has no crash model), churn healing when the load window closes.
    """
    base = ("tree", "basic", "epidemic")
    probes = [WorkItem(key=("E25", "capacity", protocol), fn=_e25_capacity,
                       kwargs=dict(protocol=protocol, seed=seed,
                                   clusters=clusters,
                                   hosts_per_cluster=hosts_per_cluster,
                                   probe_n=probe_n))
              for protocol in base]
    capacity = dict(zip(base, _map_items(executor, probes)))
    capacity["tree+shed"] = capacity["tree"]  # same protocol family

    result = ExperimentResult(
        "E25", "Saturation: overload verdicts and tail-latency SLOs",
        ["protocol", "shape", "util", "churn", "offered", "admitted",
         "delivered_ok", "p50_s", "p99_s", "p999_s", "slo", "verdict",
         "peak_queue", "peak_store", "shed", "rejected", "worst_link"])
    items = []
    for protocol in protocols:
        for shape in shapes:
            for utilization in utilizations:
                items.append(WorkItem(
                    key=("E25", protocol, shape, utilization),
                    fn=_e25_point,
                    kwargs=dict(protocol=protocol, shape=shape,
                                utilization=utilization,
                                capacity=capacity[protocol], seed=seed,
                                clusters=clusters,
                                hosts_per_cluster=hosts_per_cluster,
                                duration=duration, drain=drain,
                                churn=False, slo=slo)))
    if "tree+shed" in protocols:
        items.append(WorkItem(
            key=("E25", "tree+shed", shapes[0], max(utilizations), "churn"),
            fn=_e25_point,
            kwargs=dict(protocol="tree+shed", shape=shapes[0],
                        utilization=max(utilizations),
                        capacity=capacity["tree+shed"], seed=seed,
                        clusters=clusters,
                        hosts_per_cluster=hosts_per_cluster,
                        duration=duration, drain=3 * drain, churn=True,
                        slo=slo)))
    for row in _map_items(executor, items):
        result.add_row(**row)
    result.note("capacities (msg/s): " + ", ".join(
        f"{p}={capacity[p]:.2f}" for p in base) +
        "; util is the offered fraction of the protocol's own capacity; "
        "latency percentiles cover the admitted window only; the churn "
        "row composes overload with E20-style host crash/recovery "
        "healing at load end")
    return result


def __getattr__(name: str):  # PEP 562 back-compat shim
    """``runners.ALL_RUNNERS`` now lives in :mod:`repro.experiments.registry`.

    Importing it lazily avoids a circular import (the registry imports
    every runner from this module) while keeping the old access path
    working unchanged.
    """
    if name == "ALL_RUNNERS":
        from .registry import ALL_RUNNERS

        return ALL_RUNNERS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
