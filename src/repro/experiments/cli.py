"""Legacy entry point: ``python -m repro.experiments.cli``.

Now a shim over the unified CLI (``python -m repro experiments``); it
parses the same flags — plus the newer ``--jobs``/``--cache`` — and
emits the same tables.

Usage::

    python -m repro.experiments.cli            # run everything
    python -m repro.experiments.cli E1 E5      # run selected experiments
    python -m repro.experiments.cli --list
    python -m repro.experiments.cli E21 --jobs 4
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..cli import add_experiments_args, run_experiments_command


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments, run the selected experiments, print tables."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.cli",
        description="Reproduce the paper's experiments "
                    "(shim for `python -m repro experiments`)")
    add_experiments_args(parser)
    return run_experiments_command(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
