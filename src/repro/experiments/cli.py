"""Command-line entry point: run experiments and print their tables.

Usage::

    python -m repro.experiments.cli            # run everything
    python -m repro.experiments.cli E1 E5      # run selected experiments
    python -m repro.experiments.cli --list
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from .runners import ALL_RUNNERS


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments, run the selected experiments, print tables."""
    parser = argparse.ArgumentParser(
        description="Reproduce the paper's experiments (E1..E19)")
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids to run (default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the per-experiment default seed")
    parser.add_argument("--markdown", action="store_true",
                        help="emit GitHub-flavoured markdown tables")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write all results as JSON to PATH")
    args = parser.parse_args(argv)

    if args.list:
        for exp_id, runner in ALL_RUNNERS.items():
            doc = (runner.__doc__ or "").strip().splitlines()[0]
            print(f"{exp_id:5s} {doc}")
        return 0

    selected = args.experiments or list(ALL_RUNNERS)
    unknown = [e for e in selected if e not in ALL_RUNNERS]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        return 2

    collected = []
    for exp_id in selected:
        runner = ALL_RUNNERS[exp_id]
        started = time.time()
        kwargs = {"seed": args.seed} if args.seed is not None else {}
        result = runner(**kwargs)
        collected.append(result)
        print()
        if args.markdown:
            print(result.render_markdown())
        else:
            print(result.render())
            print(f"  [{exp_id} finished in {time.time() - started:.1f}s wall]")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as out:
            json.dump([r.as_dict() for r in collected], out, indent=2)
            out.write("\n")
        print(f"\nwrote JSON results to {args.json}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
