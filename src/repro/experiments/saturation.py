"""Sustained open-loop workloads, capacity probing, and latency SLOs.

The closed-count generators in :mod:`repro.experiments.workload` inject
"n messages, then stop" — the right shape for correctness experiments,
the wrong one for overload questions.  Saturation experiments (E25)
need **open-loop** load: arrivals keep coming for a fixed *duration* at
a chosen fraction of the system's measured capacity, whether or not the
protocol keeps up.  This module provides:

* arrival-schedule generators — Poisson, bursty (compound Poisson),
  and diurnal (sinusoidally modulated Poisson via thinning) — all
  deterministic for a given RNG stream and sharing one ``(rate,
  duration)`` parameterization so sweeps vary *shape* independently of
  *offered load*;
* :func:`measure_capacity`, a closed-loop blast probe whose result
  anchors utilization fractions to what this protocol on this topology
  can actually sustain;
* :class:`SloSpec`, declarative tail-latency gates over the
  p50/p99/p999 of per-message delivery latency.

Everything is pure scheduling and arithmetic over the simulator's named
RNG streams — no wall-clock, so sweeps stay bit-reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..analysis.delay import DelayStats, delay_stats
from ..core.delivery import DeliveryRecord
from ..net import HostId
from ..sim import Simulator
from .workload import SourceLike

#: arrival shapes understood by :func:`arrival_times`
ARRIVAL_SHAPES: Tuple[str, ...] = ("poisson", "bursty", "diurnal")


def poisson_arrival_times(rng, rate: float, duration: float) -> List[float]:
    """Homogeneous Poisson arrivals in ``[0, duration)`` at ``rate``/s."""
    if rate <= 0 or duration <= 0:
        raise ValueError("rate and duration must be positive")
    times: List[float] = []
    at = rng.expovariate(rate)
    while at < duration:
        times.append(at)
        at += rng.expovariate(rate)
    return times


def bursty_arrival_times(rng, rate: float, duration: float,
                         burst_size: int = 8,
                         intra_burst_interval: float = 0.02) -> List[float]:
    """Compound-Poisson bursts averaging ``rate`` messages/s overall.

    Burst *starts* arrive as a Poisson process at ``rate/burst_size``;
    each start releases ``burst_size`` back-to-back messages.  The mean
    offered load matches the plain Poisson shape, but arrivals cluster —
    the worst case for drop-tail queues and the tail percentiles.
    """
    if burst_size < 1:
        raise ValueError(f"burst_size must be at least 1, got {burst_size}")
    if intra_burst_interval <= 0:
        raise ValueError("intra_burst_interval must be positive")
    starts = poisson_arrival_times(rng, rate / burst_size, duration)
    times = [start + i * intra_burst_interval
             for start in starts for i in range(burst_size)]
    return sorted(t for t in times if t < duration)  # bursts may overlap


def diurnal_arrival_times(rng, rate: float, duration: float,
                          period: Optional[float] = None,
                          depth: float = 0.8) -> List[float]:
    """Sinusoidally modulated Poisson arrivals averaging ``rate``/s.

    The intensity swings between ``rate*(1-depth)`` (trough) and
    ``rate*(1+depth)`` (crest) over ``period`` (default: one full cycle
    across the duration), starting at the trough.  Implemented by
    thinning a homogeneous process at the crest rate, the textbook
    exact method for nonhomogeneous Poisson.
    """
    if not 0 <= depth < 1:
        raise ValueError(f"depth must be in [0, 1), got {depth}")
    cycle = period if period is not None else duration
    if cycle <= 0:
        raise ValueError("period must be positive")
    crest = rate * (1 + depth)
    times = []
    for at in poisson_arrival_times(rng, crest, duration):
        intensity = rate * (1 + depth * math.sin(
            2 * math.pi * at / cycle - math.pi / 2))
        if rng.random() < intensity / crest:
            times.append(at)
    return times


def arrival_times(shape: str, rng, rate: float, duration: float,
                  **kwargs) -> List[float]:
    """Dispatch to the named arrival-shape generator."""
    generators: Dict[str, Callable[..., List[float]]] = {
        "poisson": poisson_arrival_times,
        "bursty": bursty_arrival_times,
        "diurnal": diurnal_arrival_times,
    }
    if shape not in generators:
        raise ValueError(
            f"unknown arrival shape {shape!r}; known: {', '.join(ARRIVAL_SHAPES)}")
    return generators[shape](rng, rate, duration, **kwargs)


def schedule_open_loop(
    sim: Simulator,
    source: SourceLike,
    shape: str,
    rate: float,
    duration: float,
    start_at: float = 0.0,
    rng_stream: str = "workload.saturation",
    content: Callable[[int], object] = lambda k: f"msg-{k}",
    **kwargs,
) -> int:
    """Schedule one open-loop load window; returns the *offered* count.

    Offered ≠ admitted: with admission control on, some ``broadcast()``
    calls will be rejected (returning 0).  The caller reads the source's
    ``next_seq``/counters afterwards to learn how many were admitted.
    """
    times = arrival_times(shape, sim.rng.stream(rng_stream), rate, duration,
                          **kwargs)
    for k, offset in enumerate(times):
        sim.schedule_at(start_at + offset,
                        lambda k=k: source.broadcast(content(k + 1)))
    return len(times)


def measure_capacity(system, n: int = 60, window: int = 8,
                     start_at: float = 2.0, timeout: float = 600.0,
                     check_period: float = 0.1,
                     skip: Optional[int] = None) -> float:
    """Closed-loop capacity probe: messages/second the system sustains.

    Self-clocked closed loop: keep ``window`` messages outstanding —
    inject the next as soon as the oldest is delivered *everywhere* —
    until ``n`` have completed.  Self-clocking keeps the bottleneck
    stage busy without ever flooding it, so the probe measures the
    forwarding path's service rate rather than the (rate-limited)
    gap-fill recovery path an open blast would collapse onto.  Capacity
    is the steady-state completion slope from message ``skip`` (default
    ``n // 5``, amortizing attachment and first-hop latency) to message
    ``n``.  If the probe times out, the estimate covers whatever
    completed and is therefore conservative.
    """
    if n < 2:
        raise ValueError("n must be at least 2")
    if window < 1:
        raise ValueError("window must be at least 1")
    sim = system.sim
    sim.run(until=start_at)
    source = system.source
    injected = 0
    while injected < min(window, n):
        injected += 1
        source.broadcast(f"probe-{injected}")
    deadline = start_at + timeout
    done = 0
    while sim.now < deadline and done < n:
        while done < injected and system.all_delivered(done + 1):
            done += 1
            if injected < n:
                injected += 1
                source.broadcast(f"probe-{injected}")
        if done < n:
            sim.run(until=min(sim.now + check_period, deadline))

    completed: Dict[int, float] = {}
    for host, records in system.delivery_records().items():
        if host == system.source_id:
            continue
        for r in records:
            completed[r.seq] = max(completed.get(r.seq, 0.0), r.delivered_at)
    last = max(completed, default=0)
    first = skip if skip is not None else max(1, n // 5)
    if last <= first:
        makespan = sim.now - start_at  # probe barely progressed
        return last / makespan if makespan > 0 else float("inf")
    span = completed[last] - completed[first]
    return (last - first) / span if span > 0 else float("inf")


class CountingSource:
    """Wraps any source, splitting *offered* from *admitted* load.

    Open-loop generators call :meth:`broadcast` for every arrival; with
    admission control on, some calls are rejected (the wrapped source
    returns 0).  This adapter is protocol-agnostic — tree, basic, and
    epidemic sources all satisfy the ``broadcast(content) -> int``
    protocol — so E25 accounts offered/admitted identically across the
    whole sweep.
    """

    def __init__(self, source: SourceLike) -> None:
        self.source = source
        self.offered = 0
        self.admitted = 0

    def broadcast(self, content: object = None) -> int:
        """Forward one arrival; tallies the outcome either way."""
        self.offered += 1
        seq = self.source.broadcast(content)
        if seq > 0:
            self.admitted += 1
        return seq


@dataclass(frozen=True)
class SloSpec:
    """Declarative tail-latency gates (seconds); ``None`` = not gated."""

    p50: Optional[float] = None
    p99: Optional[float] = None
    p999: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("p50", "p99", "p999"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} gate must be positive, got {value}")

    def evaluate(self, stats: DelayStats) -> Tuple[bool, Tuple[str, ...]]:
        """Check ``stats`` against every declared gate.

        Returns ``(passed, failures)`` where each failure reads
        ``"p99 3.21s > 2.00s"``.  A gated percentile with no samples
        behind it (NaN) fails — silence is not compliance.
        """
        failures: List[str] = []
        for name in ("p50", "p99", "p999"):
            gate = getattr(self, name)
            if gate is None:
                continue
            measured = getattr(stats, name)
            if math.isnan(measured):
                failures.append(f"{name} unmeasured (no samples)")
            elif measured > gate:
                failures.append(f"{name} {measured:.2f}s > {gate:.2f}s")
        return (not failures, tuple(failures))


def delivery_latency_stats(
    records_by_host: Dict[HostId, List[DeliveryRecord]],
    source: HostId,
    since_seq: int = 0,
    upto_seq: Optional[int] = None,
) -> DelayStats:
    """Per-message delivery-latency stats over an admitted window.

    Like :func:`~repro.analysis.delay.system_delay_stats` but bounded
    above as well: open-loop runs must score only the messages actually
    admitted during the measured window, or rejected/late admissions
    would contaminate the tail.
    """
    delays: List[float] = []
    for host_id, records in records_by_host.items():
        if host_id == source:
            continue
        delays.extend(r.delay for r in records
                      if r.seq > since_seq
                      and (upto_seq is None or r.seq <= upto_seq))
    return delay_stats(delays)
