"""The paper's illustrative figures as runnable topologies.

* :func:`figure_3_1` — three hosts on a four-server diamond; used to
  demonstrate that host-level broadcast cannot match the (hypothetical)
  in-network multicast lower bound (experiment E8).
* :func:`figure_3_2` — three clusters where cluster C can choose its
  parent between C′ and C″ (experiment E11).
* :func:`figure_4_1` — source s with children i and j in three separate
  clusters; with s isolated and i, j missing different messages, only
  non-neighbor gap filling can reconcile them (experiment E9).
"""

from __future__ import annotations

from typing import Optional

from ..net import (
    BuiltTopology,
    HostId,
    LinkSpec,
    Network,
    cheap_spec,
    expensive_spec,
)
from ..sim import Simulator


def figure_3_1(sim: Simulator, spec: Optional[LinkSpec] = None,
               convergence_delay: float = 0.0) -> BuiltTopology:
    """Figure 3.1: hosts h1..h3, servers s1..s4.

    Links: s1–s4, s4–s2, s4–s3 (plus the three access links).  The
    server-multicast optimum traverses each of the three trunks exactly
    once per broadcast; host-level unicast must cross s1–s4 twice.
    """
    spec = spec or cheap_spec()
    network = Network(sim)
    for name in ["s1", "s2", "s3", "s4"]:
        network.add_server(name)
    network.connect("s1", "s4", spec)
    network.connect("s4", "s2", spec)
    network.connect("s4", "s3", spec)
    hosts = []
    for idx, server in [(1, "s1"), (2, "s2"), (3, "s3")]:
        host_id = HostId(f"h{idx}")
        network.add_host(host_id, server, access_spec=cheap_spec())
        hosts.append(host_id)
    network.use_global_routing(convergence_delay=convergence_delay)
    built = BuiltTopology(network=network, hosts=hosts)
    built.clusters = [sorted(c) for c in network.true_clusters()]
    return built


def figure_3_2(sim: Simulator, convergence_delay: float = 0.0) -> BuiltTopology:
    """Figure 3.2: clusters C (2 hosts), C′ (3 hosts incl. deeper tree),
    C″ (2 hosts); the source sits in C′'s parent position.

    Concretely: cluster 0 holds the source, clusters 1 (C′) and 2 (C″)
    both connect to cluster 0, and cluster 3 (C) connects to *both* C′
    and C″ — so C's leader has a genuine choice of parent cluster.
    """
    network = Network(sim)
    sizes = {0: 2, 1: 3, 2: 2, 3: 2}
    hosts = []
    clusters = []
    for c, size in sizes.items():
        network.add_server(f"s{c}")
        members = []
        for h in range(size):
            host_id = HostId(f"h{c}.{h}")
            network.add_host(host_id, f"s{c}", access_spec=cheap_spec())
            members.append(host_id)
            hosts.append(host_id)
        clusters.append(members)
    backbone = [("s0", "s1"), ("s0", "s2"), ("s1", "s3"), ("s2", "s3")]
    for a, b in backbone:
        network.connect(a, b, expensive_spec())
    network.use_global_routing(convergence_delay=convergence_delay)
    return BuiltTopology(network=network, hosts=hosts, clusters=clusters,
                         backbone=backbone)


def figure_4_1(sim: Simulator, convergence_delay: float = 0.0) -> BuiltTopology:
    """Figure 4.1: s, i, j in three singleton clusters, fully meshed.

    The trunk mesh (ss–si, ss–sj, si–sj) lets i and j keep talking after
    s is isolated — the precondition of the Section 4.4 example.
    """
    network = Network(sim)
    for name in ["ss", "si", "sj"]:
        network.add_server(name)
    backbone = [("ss", "si"), ("ss", "sj"), ("si", "sj")]
    for a, b in backbone:
        network.connect(a, b, expensive_spec())
    hosts = []
    for name, server in [("s", "ss"), ("i", "si"), ("j", "sj")]:
        host_id = HostId(name)
        network.add_host(host_id, server, access_spec=cheap_spec())
        hosts.append(host_id)
    network.use_global_routing(convergence_delay=convergence_delay)
    return BuiltTopology(network=network, hosts=hosts,
                         clusters=[[h] for h in hosts], backbone=backbone)
