"""The load-shift scenario: delay-adaptive re-parenting (Section 3).

The paper's motivating example for dynamic tree restructuring: cluster
C can choose its parent among clusters that receive broadcast messages
at different delays, and "at a later time, due to changing message
traffic, some other cluster can become a more desirable parent."

Topology (all trunks expensive):

    A(src) ── B1 ──┐
      │            C (2 hosts)
      └──── B2 ────┘

Cross-traffic first loads the A→B2 trunk (so C settles on a parent
whose path avoids it), then shifts to the A→B1 trunk.  A protocol with
case II option 3 enabled migrates C's leader toward the now-faster
side; with it disabled the leader stays put and eats the queueing
delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..net import (
    BuiltTopology,
    CrossTrafficGenerator,
    CrossTrafficSpec,
    HostId,
    Network,
    cheap_spec,
    expensive_spec,
)
from ..sim import Simulator


def load_shift_topology(sim: Simulator,
                        convergence_delay: float = 0.5) -> BuiltTopology:
    """Four clusters: A (source), relays B1/B2, and C behind both."""
    network = Network(sim)
    for name in ("s0", "s1", "s2", "s3"):
        network.add_server(name)
    backbone = [("s0", "s1"), ("s0", "s2"), ("s1", "s3"), ("s2", "s3")]
    for a, b in backbone:
        network.connect(a, b, expensive_spec())
    hosts = []
    layout = [("src", "s0"), ("b1", "s1"), ("b2", "s2"),
              ("c0", "s3"), ("c1", "s3")]
    for name, server in layout:
        host_id = HostId(name)
        network.add_host(host_id, server, access_spec=cheap_spec())
        hosts.append(host_id)
    network.use_global_routing(convergence_delay=convergence_delay)
    return BuiltTopology(
        network=network, hosts=hosts, backbone=backbone,
        clusters=[[hosts[0]], [hosts[1]], [hosts[2]], [hosts[3], hosts[4]]])


@dataclass
class LoadShift:
    """Two-phase cross-traffic: first one trunk loaded, then the other."""

    generator_phase1: CrossTrafficGenerator
    generator_phase2: CrossTrafficGenerator
    shift_at: float

    def total_injected(self, sim: Simulator) -> float:
        """Filler packets injected so far."""
        return sim.metrics.counter("xtraffic.injected").value


def apply_load_shift(
    sim: Simulator,
    built: BuiltTopology,
    shift_at: float,
    spec: Optional[CrossTrafficSpec] = None,
) -> LoadShift:
    """Load A→B2 until ``shift_at``, then A→B1 from then on."""
    spec = spec or CrossTrafficSpec(rate=6.5, size_bits=8_000)
    phase1 = CrossTrafficGenerator(sim, "xtraffic.phase1")
    phase1.load(built.network.link("s0", "s2"), "s0", spec)
    phase1.start()
    phase2 = CrossTrafficGenerator(sim, "xtraffic.phase2")
    phase2.load(built.network.link("s0", "s1"), "s0", spec)

    def shift() -> None:
        phase1.stop()
        phase2.start()
        sim.trace.emit("scenario.load_shift", "loadshift", at=sim.now)

    sim.schedule_at(shift_at, shift)
    return LoadShift(generator_phase1=phase1, generator_phase2=phase2,
                     shift_at=shift_at)
