"""Canned scenarios: paper figures and partition schedules."""

from .figures import figure_3_1, figure_3_2, figure_4_1
from .loadshift import LoadShift, apply_load_shift, load_shift_topology
from .partitions import BriefWindowSchedule, WindowSpec, midstream_partition

__all__ = [
    "BriefWindowSchedule",
    "LoadShift",
    "WindowSpec",
    "apply_load_shift",
    "figure_3_1",
    "figure_3_2",
    "figure_4_1",
    "load_shift_topology",
    "midstream_partition",
]
