"""Partition-centric scenarios (experiments E4 and E7).

* :func:`midstream_partition` — a cluster is cut off for a window in
  the middle of a broadcast stream, then the partition heals.
* :class:`BriefWindowSchedule` — the Section 6 trade-off scenario: two
  halves of the network are partitioned *almost always*, connected only
  during brief periodic windows.  A protocol's reliability is its
  ability to exploit those windows; its cost is what it spends probing
  for them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..net import (
    BuiltTopology,
    FailureSchedule,
    PartitionScheduler,
    host_group,
)
from ..sim import Simulator


def midstream_partition(
    built: BuiltTopology,
    cluster_index: int,
    start: float,
    end: float,
) -> List[Tuple[str, str]]:
    """Isolate one generator cluster (hosts + its server) during [start, end)."""
    if not built.clusters:
        raise ValueError("topology has no cluster metadata")
    cluster = built.clusters[cluster_index]
    group = host_group(built.network, cluster)
    server = built.network.server_of(cluster[0])
    if server is not None and server not in group:
        group.append(server)
    scheduler = PartitionScheduler(built.network.sim, built.network)
    return scheduler.isolate(group, start, end)


@dataclass(frozen=True)
class WindowSpec:
    """Periodic brief connectivity: every ``period``, up for ``width``."""

    period: float
    width: float
    first_open: float = 0.0

    def __post_init__(self) -> None:
        if self.period <= 0 or self.width <= 0 or self.width >= self.period:
            raise ValueError("need 0 < width < period")


class BriefWindowSchedule:
    """Keep a set of links down except during periodic brief windows.

    ``built`` may be a :class:`~repro.net.generator.BuiltTopology` or a
    bare :class:`~repro.net.topology.Network` — chaos orchestration
    (:class:`repro.chaos.plan.ChaosPlan`) only has the network.
    """

    def __init__(
        self,
        sim: Simulator,
        built,
        links: Sequence[Tuple[str, str]],
        window: WindowSpec,
        until: float,
    ) -> None:
        if until <= window.first_open:
            raise ValueError(
                f"until {until} must be after first_open {window.first_open}")
        self.schedule = FailureSchedule(sim, getattr(built, "network", built))
        self.windows: List[Tuple[float, float]] = []
        # Down from t=0 (well, immediately) until the first window.
        for a, b in links:
            if window.first_open > 0:
                self.schedule.down(0.0, a, b)
        t = window.first_open
        while t < until:
            open_at, close_at = t, min(t + window.width, until)
            self.windows.append((open_at, close_at))
            for a, b in links:
                if open_at > 0:
                    self.schedule.up(open_at, a, b)
                self.schedule.down(close_at, a, b)
            t += window.period
        # Leave the links up after the experiment horizon so any final
        # accounting isn't confounded by a dangling partition.
        for a, b in links:
            self.schedule.up(until + 1e-9, a, b)

    @property
    def total_open_time(self) -> float:
        """Total seconds of connectivity granted over all windows."""
        return sum(close - open_ for open_, close in self.windows)
