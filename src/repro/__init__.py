"""repro — Reliable Broadcast in Networks with Nonprogrammable Servers.

A complete reproduction of Garcia-Molina, Kogan & Lynch (ICDCS 1988):
the cluster-tree reliable broadcast protocol, the nonprogrammable-server
network substrate it runs on, the paper's "basic algorithm" baseline,
and a benchmark harness for every claim in the paper's evaluation.

Quickstart::

    from repro import Simulator, wan_of_lans, BroadcastSystem

    sim = Simulator(seed=42)
    topo = wan_of_lans(sim, clusters=3, hosts_per_cluster=3)
    system = BroadcastSystem(topo).start()
    system.broadcast_stream(count=10, interval=1.0, start_at=5.0)
    system.run_until_delivered(10, timeout=120.0)

Layers (each its own subpackage):

* :mod:`repro.sim` — deterministic discrete-event kernel
* :mod:`repro.net` — servers, links, routing, failures, topologies
* :mod:`repro.core` — the paper's protocol (the contribution)
* :mod:`repro.io` — sans-IO seam: Runtime/Transport contracts, the
  sim adapters, and the real asyncio/UDP backend
* :mod:`repro.baseline` — the basic algorithm and epidemic gossip
* :mod:`repro.analysis` — cost/delay/reliability measurement
* :mod:`repro.verify` — invariant oracles
* :mod:`repro.scenarios` — the paper's figures as topologies
* :mod:`repro.experiments` — runners for experiments E1..E19
"""

from .baseline import (
    BasicBroadcastSystem,
    BasicConfig,
    EpidemicBroadcastSystem,
    EpidemicConfig,
)
from .core import (
    BroadcastHost,
    BroadcastSystem,
    ClusterMode,
    ProtocolConfig,
    SeqnoSet,
    SourceHost,
)
from .net import (
    BuiltTopology,
    HostId,
    LinkSpec,
    Network,
    cheap_spec,
    expensive_spec,
    line_topology,
    random_topology,
    star_topology,
    wan_of_lans,
)
from .sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "BasicBroadcastSystem",
    "BasicConfig",
    "BroadcastHost",
    "BroadcastSystem",
    "BuiltTopology",
    "ClusterMode",
    "EpidemicBroadcastSystem",
    "EpidemicConfig",
    "HostId",
    "LinkSpec",
    "Network",
    "ProtocolConfig",
    "SeqnoSet",
    "Simulator",
    "SourceHost",
    "__version__",
    "cheap_spec",
    "expensive_spec",
    "line_topology",
    "random_topology",
    "star_topology",
    "wan_of_lans",
]
