"""Shared pieces of the baseline broadcast implementations.

Both baselines reuse the tree protocol's :class:`~repro.core.wire.DataMsg`
payload and :class:`~repro.core.delivery.DeliveryLog`, so the analysis
layer can compare systems without caring which protocol produced the
deliveries.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.delivery import DeliverCallback, DeliveryLog, DeliveryRecord
from ..core.wire import DataMsg
from ..io.interfaces import Runtime, Transport, as_runtime
from ..net import HostId


class BaselineHostBase:
    """A minimal receiving host: dedup + delivery log."""

    def __init__(
        self,
        sim: object,
        port: Transport,
        deliver_callback: Optional[DeliverCallback] = None,
    ) -> None:
        """``sim`` accepts either a :class:`~repro.io.interfaces.Runtime`
        or a bare :class:`~repro.sim.kernel.Simulator` (wrapped on the
        fly); the parameter keeps its historic name."""
        self.runtime: Runtime = as_runtime(sim)
        #: the underlying simulator when running in-sim; None on real
        #: backends (sim-side tooling may reach through this)
        self.sim = getattr(self.runtime, "sim", None)
        self.port = port
        self.me = port.host_id
        self.deliveries = DeliveryLog(self.me, deliver_callback)
        self.store: Dict[int, DataMsg] = {}
        self.crashed = False
        self._crashed_at: Optional[float] = None
        self._awaiting_recovery_delivery = False
        #: monotone stable-storage flush point; survives crashes
        self._flushed_prefix = 0

    def accept_data(self, msg: DataMsg, supplier: HostId) -> bool:
        """Record a data message; returns False for duplicates."""
        if msg.seq in self.deliveries:
            self.runtime.counter("proto.data.discard.duplicate").inc()
            return False
        self.store[msg.seq] = msg
        self.deliveries.record(DeliveryRecord(
            seq=msg.seq, content=msg.content, created_at=msg.created_at,
            delivered_at=self.runtime.now(), supplier=supplier,
            via_gapfill=msg.gapfill))
        self.runtime.trace("host.deliver", str(self.me), seq=msg.seq,
                            sender=str(supplier), gapfill=msg.gapfill)
        self.runtime.counter("proto.deliver").inc()
        self.runtime.histogram("proto.delay").observe(
            self.runtime.now() - msg.created_at)
        if self._awaiting_recovery_delivery:
            self._awaiting_recovery_delivery = False
            elapsed = self.runtime.now() - (self._crashed_at or 0.0)
            self.runtime.histogram("proto.host.recovery_time").observe(elapsed)
            self.runtime.trace("host.recovery_delivery", str(self.me),
                                elapsed=elapsed, seq=msg.seq)
        return True

    # -- crash/recovery (failure model parity with the tree hosts) -----

    def _stable_prefix(self) -> int:
        """What survives a crash; subclasses apply their stable lag.

        Monotone: once flushed, a message cannot be lost by a later
        crash, so the flush point never moves backward.
        """
        self._flushed_prefix = max(self._flushed_prefix,
                                   self.deliveries.contiguous_prefix())
        return self._flushed_prefix

    def crash(self) -> None:
        """Crash this host: volatile state beyond the contiguous stable
        prefix is lost, and inbound packets are dropped until recovery.

        Uses the same trace events and counters as the tree protocol's
        :meth:`repro.core.host.BroadcastHost.crash`, so chaos harnesses
        and experiments account for both protocols uniformly.
        """
        if self.crashed:
            return
        self.crashed = True
        self._crashed_at = self.runtime.now()
        self._awaiting_recovery_delivery = False
        stable = self._stable_prefix()
        lost = self.deliveries.forget_above(stable)
        for seq in [s for s in self.store if s > stable]:
            del self.store[seq]
        self.runtime.trace("host.crash", str(self.me),
                            stable_prefix=stable, lost=lost)
        self.runtime.counter("proto.host.crash").inc()

    def recover(self) -> None:
        """Recover from a crash; no-op when the host is up."""
        if not self.crashed:
            return
        self.crashed = False
        self._awaiting_recovery_delivery = True
        down_for = (self.runtime.now() - self._crashed_at
                    if self._crashed_at is not None else 0.0)
        self.runtime.trace("host.recover", str(self.me), down_for=down_for)
        self.runtime.counter("proto.host.recover").inc()
