"""Shared pieces of the baseline broadcast implementations.

Both baselines reuse the tree protocol's :class:`~repro.core.wire.DataMsg`
payload and :class:`~repro.core.delivery.DeliveryLog`, so the analysis
layer can compare systems without caring which protocol produced the
deliveries.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.delivery import DeliverCallback, DeliveryLog, DeliveryRecord
from ..core.wire import DataMsg
from ..net import HostId, HostPort
from ..sim import Simulator


class BaselineHostBase:
    """A minimal receiving host: dedup + delivery log."""

    def __init__(
        self,
        sim: Simulator,
        port: HostPort,
        deliver_callback: Optional[DeliverCallback] = None,
    ) -> None:
        self.sim = sim
        self.port = port
        self.me = port.host_id
        self.deliveries = DeliveryLog(self.me, deliver_callback)
        self.store: Dict[int, DataMsg] = {}
        self.crashed = False
        self._crashed_at: Optional[float] = None
        self._awaiting_recovery_delivery = False
        #: monotone stable-storage flush point; survives crashes
        self._flushed_prefix = 0

    def accept_data(self, msg: DataMsg, supplier: HostId) -> bool:
        """Record a data message; returns False for duplicates."""
        if msg.seq in self.deliveries:
            self.sim.metrics.counter("proto.data.discard.duplicate").inc()
            return False
        self.store[msg.seq] = msg
        self.deliveries.record(DeliveryRecord(
            seq=msg.seq, content=msg.content, created_at=msg.created_at,
            delivered_at=self.sim.now, supplier=supplier,
            via_gapfill=msg.gapfill))
        self.sim.trace.emit("host.deliver", str(self.me), seq=msg.seq,
                            sender=str(supplier), gapfill=msg.gapfill)
        self.sim.metrics.counter("proto.deliver").inc()
        self.sim.metrics.histogram("proto.delay").observe(
            self.sim.now - msg.created_at)
        if self._awaiting_recovery_delivery:
            self._awaiting_recovery_delivery = False
            elapsed = self.sim.now - (self._crashed_at or 0.0)
            self.sim.metrics.histogram("proto.host.recovery_time").observe(elapsed)
            self.sim.trace.emit("host.recovery_delivery", str(self.me),
                                elapsed=elapsed, seq=msg.seq)
        return True

    # -- crash/recovery (failure model parity with the tree hosts) -----

    def _stable_prefix(self) -> int:
        """What survives a crash; subclasses apply their stable lag.

        Monotone: once flushed, a message cannot be lost by a later
        crash, so the flush point never moves backward.
        """
        self._flushed_prefix = max(self._flushed_prefix,
                                   self.deliveries.contiguous_prefix())
        return self._flushed_prefix

    def crash(self) -> None:
        """Crash this host: volatile state beyond the contiguous stable
        prefix is lost, and inbound packets are dropped until recovery.

        Uses the same trace events and counters as the tree protocol's
        :meth:`repro.core.host.BroadcastHost.crash`, so chaos harnesses
        and experiments account for both protocols uniformly.
        """
        if self.crashed:
            return
        self.crashed = True
        self._crashed_at = self.sim.now
        self._awaiting_recovery_delivery = False
        stable = self._stable_prefix()
        lost = self.deliveries.forget_above(stable)
        for seq in [s for s in self.store if s > stable]:
            del self.store[seq]
        self.sim.trace.emit("host.crash", str(self.me),
                            stable_prefix=stable, lost=lost)
        self.sim.metrics.counter("proto.host.crash").inc()

    def recover(self) -> None:
        """Recover from a crash; no-op when the host is up."""
        if not self.crashed:
            return
        self.crashed = False
        self._awaiting_recovery_delivery = True
        down_for = (self.sim.now - self._crashed_at
                    if self._crashed_at is not None else 0.0)
        self.sim.trace.emit("host.recover", str(self.me), down_for=down_for)
        self.sim.metrics.counter("proto.host.recover").inc()
