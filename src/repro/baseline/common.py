"""Shared pieces of the baseline broadcast implementations.

Both baselines reuse the tree protocol's :class:`~repro.core.wire.DataMsg`
payload and :class:`~repro.core.delivery.DeliveryLog`, so the analysis
layer can compare systems without caring which protocol produced the
deliveries.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.delivery import DeliverCallback, DeliveryLog, DeliveryRecord
from ..core.wire import DataMsg
from ..net import HostId, HostPort
from ..sim import Simulator


class BaselineHostBase:
    """A minimal receiving host: dedup + delivery log."""

    def __init__(
        self,
        sim: Simulator,
        port: HostPort,
        deliver_callback: Optional[DeliverCallback] = None,
    ) -> None:
        self.sim = sim
        self.port = port
        self.me = port.host_id
        self.deliveries = DeliveryLog(self.me, deliver_callback)
        self.store: Dict[int, DataMsg] = {}

    def accept_data(self, msg: DataMsg, supplier: HostId) -> bool:
        """Record a data message; returns False for duplicates."""
        if msg.seq in self.deliveries:
            self.sim.metrics.counter("proto.data.discard.duplicate").inc()
            return False
        self.store[msg.seq] = msg
        self.deliveries.record(DeliveryRecord(
            seq=msg.seq, content=msg.content, created_at=msg.created_at,
            delivered_at=self.sim.now, supplier=supplier,
            via_gapfill=msg.gapfill))
        self.sim.trace.emit("host.deliver", str(self.me), seq=msg.seq,
                            sender=str(supplier), gapfill=msg.gapfill)
        self.sim.metrics.counter("proto.deliver").inc()
        self.sim.metrics.histogram("proto.delay").observe(
            self.sim.now - msg.created_at)
        return True
