"""Baseline broadcast algorithms the paper compares against.

* :class:`BasicBroadcastSystem` — the paper's "basic algorithm"
  (Section 1): the source unicasts a separately addressed copy to every
  host and retransmits until acknowledged.
* :class:`EpidemicBroadcastSystem` — push-pull anti-entropy gossip
  ([Deme87]), an extension baseline for experiment E12.
"""

from .basic import (
    AckMsg,
    BasicBroadcastSystem,
    BasicConfig,
    BasicReceiver,
    BasicSource,
)
from .common import BaselineHostBase
from .epidemic import (
    Digest,
    EpidemicBroadcastSystem,
    EpidemicConfig,
    EpidemicHost,
    EpidemicSource,
)

__all__ = [
    "AckMsg",
    "BaselineHostBase",
    "BasicBroadcastSystem",
    "BasicConfig",
    "BasicReceiver",
    "BasicSource",
    "Digest",
    "EpidemicBroadcastSystem",
    "EpidemicConfig",
    "EpidemicHost",
    "EpidemicSource",
]
