"""Anti-entropy epidemic broadcast ([Deme87], cited by the paper).

The paper points at Demers et al.'s epidemic algorithms as the solution
for the harder setting where hosts do not know all participants.  We
implement the classic push-pull anti-entropy variant as an extension
baseline (experiment E12):

* every host periodically picks one random partner and sends it a
  digest of its INFO set;
* the partner replies with the messages the requester lacks (push) and
  its own digest, prompting the requester to send back what the partner
  lacks (pull);
* optionally, a new message is eagerly pushed to ``fanout`` random
  hosts (rumor mongering) to cut initial latency.

Epidemic broadcast ignores link costs entirely — its sync partners are
uniformly random — which is exactly why the paper's cluster-tree beats
it on inter-cluster traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..core.delivery import DeliverCallback, DeliveryRecord
from ..core.seqnoset import SeqnoSet
from ..core.wire import KIND_CONTROL, DataMsg
from ..io.simbackend import SimRuntime
from ..net import BuiltTopology, HostId, Packet
from ..sim import Simulator
from .common import BaselineHostBase


@dataclass(frozen=True)
class Digest:
    """Anti-entropy digest: the sender's INFO snapshot."""

    sender: HostId
    info: SeqnoSet
    #: True when this digest is a reply (prevents infinite digest ping-pong)
    reply: bool = False
    size_bits: int = 1_000

    def __post_init__(self) -> None:
        object.__setattr__(self, "info", self.info.copy())

    @property
    def kind(self) -> str:
        """Payload class tag used for traffic accounting."""
        return KIND_CONTROL


@dataclass(frozen=True)
class EpidemicConfig:
    """Tuning for the anti-entropy baseline."""

    sync_period: float = 2.0
    #: eager push of brand-new messages to this many random hosts
    fanout: int = 2
    #: cap on data messages pushed per sync exchange
    batch_limit: int = 10
    data_size_bits: int = 8_000
    digest_size_bits: int = 1_000

    def __post_init__(self) -> None:
        if self.sync_period <= 0:
            raise ValueError("sync_period must be positive")
        if self.fanout < 0:
            raise ValueError("fanout must be non-negative")
        if self.batch_limit < 1:
            raise ValueError("batch_limit must be at least 1")


class EpidemicHost(BaselineHostBase):
    """One gossiping host."""

    def __init__(self, sim, port, participants: List[HostId],
                 config: EpidemicConfig,
                 deliver_callback: Optional[DeliverCallback] = None) -> None:
        super().__init__(sim, port, deliver_callback)
        self.participants = sorted(h for h in participants if h != self.me)
        self.config = config
        self.info = SeqnoSet()
        self._rng = self.runtime.rng(f"epidemic.{self.me}")
        port.set_receiver(self._on_packet)
        self._sync_task = self.runtime.start_periodic(
            config.sync_period, self._sync_tick,
            jitter=config.sync_period * 0.2,
            rng_stream=f"epidemic.{self.me}.sync", name="epidemic_sync")

    def start(self) -> "EpidemicHost":
        """Start periodic activity; returns self for chaining."""
        self._sync_task.start()
        return self

    def stop(self) -> None:
        """Stop periodic activity; safe to call more than once."""
        self._sync_task.stop()

    # ------------------------------------------------------------------

    def _on_packet(self, packet: Packet) -> None:
        payload = packet.payload
        if isinstance(payload, DataMsg):
            if payload.seq not in self.info:
                self.info.add(payload.seq)
                self.accept_data(payload, packet.src)
            else:
                self.runtime.counter("proto.data.discard.duplicate").inc()
        elif isinstance(payload, Digest):
            self._answer_digest(payload, packet.src)

    def _answer_digest(self, digest: Digest, sender: HostId) -> None:
        # Push what the partner lacks.
        missing = self.info.difference(digest.info,
                                       limit=self.config.batch_limit)
        for seq in missing:
            msg = self.store.get(seq)
            if msg is not None:
                self.port.send(sender, DataMsg(
                    seq=msg.seq, content=msg.content,
                    created_at=msg.created_at, origin=msg.origin,
                    gapfill=True, size_bits=self.config.data_size_bits))
                self.runtime.counter("epidemic.pushed").inc()
        # Pull: reply with our digest once so the partner can push back.
        if not digest.reply:
            self.port.send(sender, Digest(
                sender=self.me, info=self.info, reply=True,
                size_bits=self.config.digest_size_bits))

    def _sync_tick(self) -> None:
        if not self.participants:
            return
        partner = self.participants[self._rng.randrange(len(self.participants))]
        self.port.send(partner, Digest(sender=self.me, info=self.info,
                                       size_bits=self.config.digest_size_bits))
        self.runtime.counter("epidemic.syncs").inc()


class EpidemicSource(EpidemicHost):
    """The host where new messages originate."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._next_seq = 1

    def broadcast(self, content: object = None) -> int:
        """Issue one new broadcast message; returns its sequence number."""
        seq = self._next_seq
        self._next_seq += 1
        msg = DataMsg(seq=seq, content=content, created_at=self.runtime.now(),
                      origin=self.me, size_bits=self.config.data_size_bits)
        self.info.add(seq)
        self.store[seq] = msg
        self.deliveries.record(DeliveryRecord(
            seq=seq, content=content, created_at=self.runtime.now(),
            delivered_at=self.runtime.now(), supplier=self.me, via_gapfill=False))
        self.runtime.counter("proto.source.broadcasts").inc()
        # Rumor mongering: eager push to a few random hosts.
        if self.participants and self.config.fanout:
            count = min(self.config.fanout, len(self.participants))
            for target in self._rng.sample(self.participants, count):
                self.port.send(target, msg)
        return seq


class EpidemicBroadcastSystem:
    """Anti-entropy broadcast over a topology (same API as the others)."""

    def __init__(
        self,
        built: BuiltTopology,
        config: Optional[EpidemicConfig] = None,
        source: Optional[HostId] = None,
        deliver_callback: Optional[DeliverCallback] = None,
    ) -> None:
        self.built = built
        self.network = built.network
        self.sim: Simulator = built.network.sim
        self.config = config or EpidemicConfig()
        self.source_id = source if source is not None else built.source
        self.runtime = SimRuntime(self.sim)
        self.hosts: Dict[HostId, EpidemicHost] = {}
        for host_id in built.hosts:
            cls = EpidemicSource if host_id == self.source_id else EpidemicHost
            self.hosts[host_id] = cls(
                self.runtime, self.network.host_port(host_id), built.hosts,
                self.config, deliver_callback)

    @property
    def source(self) -> EpidemicSource:
        """The source host agent (root of the broadcast)."""
        host = self.hosts[self.source_id]
        assert isinstance(host, EpidemicSource)
        return host

    def start(self) -> "EpidemicBroadcastSystem":
        """Start periodic activity; returns self for chaining."""
        for host in self.hosts.values():
            host.start()
        return self

    def stop(self) -> None:
        """Stop periodic activity; safe to call more than once."""
        for host in self.hosts.values():
            host.stop()

    def broadcast_stream(
        self,
        count: int,
        interval: float,
        start_at: float = 0.0,
        content: Callable[[int], object] = lambda seq: f"msg-{seq}",
    ) -> None:
        """Schedule ``count`` broadcasts, one every ``interval`` seconds."""
        if count < 0 or interval <= 0:
            raise ValueError("count must be >= 0 and interval positive")
        for k in range(count):
            self.sim.schedule_at(start_at + k * interval,
                                 lambda k=k: self.source.broadcast(content(k + 1)))

    def all_delivered(self, n: int, hosts: Optional[List[HostId]] = None) -> bool:
        """True when every (given) host has delivered messages 1..n."""
        targets = hosts if hosts is not None else self.built.hosts
        return all(self.hosts[h].deliveries.has_all(n) for h in targets)

    def run_until_delivered(
        self,
        n: int,
        timeout: float,
        hosts: Optional[List[HostId]] = None,
        check_period: float = 0.5,
    ) -> bool:
        """Run until 1..n reach all (given) hosts or ``timeout`` elapses."""
        deadline = self.runtime.now() + timeout
        while self.runtime.now() < deadline:
            if self.all_delivered(n, hosts):
                return True
            self.sim.run(until=min(self.runtime.now() + check_period, deadline))
        return self.all_delivered(n, hosts)

    def delivery_records(self):
        """Per-host delivery records, keyed by host id."""
        return {host_id: host.deliveries.records()
                for host_id, host in self.hosts.items()}
