"""The paper's *basic algorithm* (Section 1): per-host unicast + acks.

"A simple and obvious way to broadcast a message is to send a
separately addressed copy of it to every host in the network and repeat
this process until an acknowledgment is received."

Characteristics the experiments measure against:

* the source transmits one copy per destination — at least k−1 and
  usually far more inter-cluster transmissions per message;
* every retransmission (recovery) comes from the source, however
  "remote" the needy host is;
* during a partition the source wastefully keeps retransmitting to
  unreachable hosts;
* all copies funnel through the source's access link (congestion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..core.delivery import DeliverCallback, DeliveryRecord
from ..core.wire import KIND_CONTROL, DataMsg
from ..io.interfaces import PeriodicHandle
from ..io.simbackend import SimRuntime
from ..net import BuiltTopology, HostId, Packet
from ..sim import Simulator
from .common import BaselineHostBase


@dataclass(frozen=True)
class AckMsg:
    """Receiver's acknowledgment for one data message."""

    seq: int
    sender: HostId
    size_bits: int = 1_000

    @property
    def kind(self) -> str:
        """Payload class tag used for traffic accounting."""
        return KIND_CONTROL


@dataclass(frozen=True)
class BasicConfig:
    """Tuning for the basic algorithm."""

    #: how often the source retransmits unacknowledged copies
    retry_period: float = 2.0
    #: cap on retransmissions per destination per retry tick
    retry_batch_limit: int = 20
    data_size_bits: int = 8_000
    ack_size_bits: int = 1_000
    #: a crashing receiver keeps its contiguous delivered prefix minus
    #: this many messages (same stable-storage model as
    #: :attr:`repro.core.config.ProtocolConfig.crash_stable_lag`)
    crash_stable_lag: int = 0

    def __post_init__(self) -> None:
        if self.retry_period <= 0:
            raise ValueError("retry_period must be positive")
        if self.retry_batch_limit < 1:
            raise ValueError("retry_batch_limit must be at least 1")
        if self.crash_stable_lag < 0:
            raise ValueError("crash_stable_lag must be >= 0")


class BasicReceiver(BaselineHostBase):
    """Accepts data, always acks (acks themselves can be lost)."""

    def __init__(self, sim, port, source: HostId, config: BasicConfig,
                 deliver_callback: Optional[DeliverCallback] = None) -> None:
        super().__init__(sim, port, deliver_callback)
        self.source = source
        self.config = config
        port.set_receiver(self._on_packet)

    def _stable_prefix(self) -> int:
        self._flushed_prefix = max(
            self._flushed_prefix,
            self.deliveries.contiguous_prefix() - self.config.crash_stable_lag)
        return self._flushed_prefix

    def _on_packet(self, packet: Packet) -> None:
        if self.crashed:
            self.runtime.trace("host.drop_crashed", str(self.me))
            self.runtime.counter("proto.host.drop_crashed").inc()
            return
        payload = packet.payload
        if isinstance(payload, DataMsg):
            self.accept_data(payload, packet.src)
            self.port.send(self.source, AckMsg(
                seq=payload.seq, sender=self.me,
                size_bits=self.config.ack_size_bits))


class BasicSource(BaselineHostBase):
    """The source: unicasts to each host, retries until acked."""

    def __init__(self, sim, port, receivers: List[HostId], config: BasicConfig,
                 deliver_callback: Optional[DeliverCallback] = None) -> None:
        super().__init__(sim, port, deliver_callback)
        self.receivers = sorted(h for h in receivers if h != self.me)
        self.config = config
        self._next_seq = 1
        #: outstanding (host, seq) pairs awaiting acknowledgment
        self.unacked: Set[Tuple[HostId, int]] = set()
        port.set_receiver(self._on_packet)
        self._retry_task: PeriodicHandle = self.runtime.start_periodic(
            config.retry_period, self._retry_tick,
            jitter=config.retry_period * 0.1,
            rng_stream=f"basic.{self.me}.retry", name="basic_retry")

    def start(self) -> "BasicSource":
        """Start periodic activity; returns self for chaining."""
        self._retry_task.start()
        return self

    def stop(self) -> None:
        """Stop periodic activity; safe to call more than once."""
        self._retry_task.stop()

    # -- crash/recovery ------------------------------------------------

    def crash(self) -> None:
        """Crash the source: retries stop, inbound acks are dropped.

        The outbox (``store``), sequence counter, and unacked set live
        on stable storage — the same model as the tree protocol's
        :class:`~repro.core.source.SourceHost` — so recovery resumes
        retries exactly where they left off.
        """
        was_up = not self.crashed
        super().crash()
        if was_up:
            self._retry_task.stop()

    def recover(self) -> None:
        was_down = self.crashed
        super().recover()
        if was_down:
            # The source delivers its own messages at issue time; the
            # recovery-time metric is meaningful only for receivers.
            self._awaiting_recovery_delivery = False
            self._retry_task.start()

    # ------------------------------------------------------------------

    def broadcast(self, content: object = None) -> int:
        """Send one new message: a separately addressed copy per host."""
        seq = self._next_seq
        self._next_seq += 1
        msg = DataMsg(seq=seq, content=content, created_at=self.runtime.now(),
                      origin=self.me, size_bits=self.config.data_size_bits)
        self.store[seq] = msg
        self.deliveries.record(DeliveryRecord(
            seq=seq, content=content, created_at=self.runtime.now(),
            delivered_at=self.runtime.now(), supplier=self.me, via_gapfill=False))
        self.runtime.trace("source.broadcast", str(self.me), seq=seq,
                            while_crashed=self.crashed)
        self.runtime.counter("proto.source.broadcasts").inc()
        for host in self.receivers:
            if not self.crashed:
                self.port.send(host, msg)
            self.unacked.add((host, seq))
        return seq

    def _on_packet(self, packet: Packet) -> None:
        if self.crashed:
            self.runtime.trace("host.drop_crashed", str(self.me))
            self.runtime.counter("proto.host.drop_crashed").inc()
            return
        payload = packet.payload
        if isinstance(payload, AckMsg):
            self.unacked.discard((payload.sender, payload.seq))

    def _retry_tick(self) -> None:
        budget: Dict[HostId, int] = {}
        for host, seq in sorted(self.unacked, key=lambda p: (str(p[0]), p[1])):
            if budget.get(host, 0) >= self.config.retry_batch_limit:
                continue
            budget[host] = budget.get(host, 0) + 1
            msg = self.store[seq]
            self.port.send(host, DataMsg(
                seq=msg.seq, content=msg.content, created_at=msg.created_at,
                origin=msg.origin, gapfill=True,
                size_bits=self.config.data_size_bits))
            self.runtime.counter("basic.retransmissions").inc()
            self.runtime.trace("basic.retry", str(self.me), target=str(host),
                                seq=seq)


class BasicBroadcastSystem:
    """The basic algorithm deployed over a topology.

    API mirrors :class:`repro.core.engine.BroadcastSystem` so analysis
    code and benchmarks treat the two interchangeably.
    """

    def __init__(
        self,
        built: BuiltTopology,
        config: Optional[BasicConfig] = None,
        source: Optional[HostId] = None,
        deliver_callback: Optional[DeliverCallback] = None,
    ) -> None:
        self.built = built
        self.network = built.network
        self.sim: Simulator = built.network.sim
        self.config = config or BasicConfig()
        self.source_id = source if source is not None else built.source
        if self.source_id not in built.hosts:
            raise ValueError(f"source {self.source_id} is not a topology host")
        self.runtime = SimRuntime(self.sim)
        self.hosts: Dict[HostId, BaselineHostBase] = {}
        for host_id in built.hosts:
            port = self.network.host_port(host_id)
            if host_id == self.source_id:
                self.hosts[host_id] = BasicSource(
                    self.runtime, port, built.hosts, self.config, deliver_callback)
            else:
                self.hosts[host_id] = BasicReceiver(
                    self.runtime, port, self.source_id, self.config, deliver_callback)

    @property
    def source(self) -> BasicSource:
        """The source host agent (root of the broadcast)."""
        host = self.hosts[self.source_id]
        assert isinstance(host, BasicSource)
        return host

    def start(self) -> "BasicBroadcastSystem":
        """Start periodic activity; returns self for chaining."""
        self.source.start()
        return self

    def stop(self) -> None:
        """Stop periodic activity; safe to call more than once."""
        self.source.stop()

    def crash_host(self, host_id: HostId) -> None:
        """Crash one host (volatile state lost, silent; idempotent)."""
        self.hosts[host_id].crash()

    def recover_host(self, host_id: HostId) -> None:
        """Recover a crashed host (no-op when it is up)."""
        self.hosts[host_id].recover()

    def crashed_hosts(self) -> List[HostId]:
        """Hosts currently down, sorted."""
        return sorted(h for h, host in self.hosts.items() if host.crashed)

    def broadcast_stream(
        self,
        count: int,
        interval: float,
        start_at: float = 0.0,
        content: Callable[[int], object] = lambda seq: f"msg-{seq}",
    ) -> None:
        """Schedule ``count`` broadcasts, one every ``interval`` seconds."""
        if count < 0 or interval <= 0:
            raise ValueError("count must be >= 0 and interval positive")
        for k in range(count):
            self.sim.schedule_at(start_at + k * interval,
                                 lambda k=k: self.source.broadcast(content(k + 1)))

    def all_delivered(self, n: int, hosts: Optional[List[HostId]] = None) -> bool:
        """True when every (given) host has delivered messages 1..n."""
        targets = hosts if hosts is not None else self.built.hosts
        return all(self.hosts[h].deliveries.has_all(n) for h in targets)

    def run_until_delivered(
        self,
        n: int,
        timeout: float,
        hosts: Optional[List[HostId]] = None,
        check_period: float = 0.5,
    ) -> bool:
        """Run until 1..n reach all (given) hosts or ``timeout`` elapses."""
        deadline = self.runtime.now() + timeout
        while self.runtime.now() < deadline:
            if self.all_delivered(n, hosts):
                return True
            self.sim.run(until=min(self.runtime.now() + check_period, deadline))
        return self.all_delivered(n, hosts)

    def delivery_records(self):
        """Per-host delivery records, keyed by host id."""
        return {host_id: host.deliveries.records()
                for host_id, host in self.hosts.items()}
