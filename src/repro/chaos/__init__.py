"""Chaos orchestration: composable fault injection with a heal horizon.

The network layer (:mod:`repro.net.failures`) injects *network* faults
— link outages, link churn, server crashes, partitions.  This package
adds the failure model's third leg, **host** crashes (a crashed host
loses volatile state and must re-attach and catch up on recovery), and
a :class:`ChaosPlan` orchestrator that composes all injector kinds from
one declarative, seed-deterministic spec with a guaranteed heal-by
horizon — after which every injected fault is provably repaired, so
tests can assert the paper's eventual-delivery claim.
"""

from .hosts import HostCrashSchedule, HostFlapper
from .packets import PacketChaos, PacketFaultSpec
from .plan import (
    ChaosPlan,
    ChaosSpec,
    HostChurnSpec,
    HostOutageSpec,
    LinkChurnSpec,
    LinkOutageSpec,
    PartitionSpec,
    PartitionWindowSpec,
    ServerOutageSpec,
)

__all__ = [
    "ChaosPlan",
    "ChaosSpec",
    "HostChurnSpec",
    "HostCrashSchedule",
    "HostFlapper",
    "HostOutageSpec",
    "LinkChurnSpec",
    "LinkOutageSpec",
    "PacketChaos",
    "PacketFaultSpec",
    "PartitionSpec",
    "PartitionWindowSpec",
    "ServerOutageSpec",
]
