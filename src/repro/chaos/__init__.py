"""Chaos orchestration: composable fault injection with a heal horizon.

The network layer (:mod:`repro.net.failures`) injects *network* faults
— link outages, link churn, server crashes, partitions.  This package
adds the failure model's third leg, **host** crashes (a crashed host
loses volatile state and must re-attach and catch up on recovery), and
a :class:`ChaosPlan` orchestrator that composes all injector kinds from
one declarative, seed-deterministic spec with a guaranteed heal-by
horizon — after which every injected fault is provably repaired, so
tests can assert the paper's eventual-delivery claim.

The host and packet injectors are backend-agnostic (sans-IO): they
speak only the :class:`~repro.io.interfaces.Runtime` contract and the
uniform transport tap surface, so the same seeded spec also runs over
real UDP sockets via :class:`~repro.chaos.nemesis.ChaosNemesis`, the
wall-clock counterpart of :class:`ChaosPlan`.

:mod:`repro.chaos.adversary` goes past faults entirely: adversarial
(Byzantine-ish) host personas that keep misbehaving *through* the heal
horizon, against which the delivery claim is asserted over correct
hosts only (see :mod:`repro.verify.containment`).
"""

from .adversary import PERSONAS, AdversaryHarness, AdversarySpec
from .hosts import HostCrashSchedule, HostFlapper
from .nemesis import ChaosNemesis, validate_udp_spec
from .packets import PacketChaos, PacketFaultSpec
from .plan import (
    ChaosPlan,
    ChaosSpec,
    HostChurnSpec,
    HostOutageSpec,
    LinkChurnSpec,
    LinkOutageSpec,
    PartitionSpec,
    PartitionWindowSpec,
    ServerOutageSpec,
)

__all__ = [
    "AdversaryHarness",
    "AdversarySpec",
    "ChaosNemesis",
    "ChaosPlan",
    "ChaosSpec",
    "PERSONAS",
    "HostChurnSpec",
    "HostCrashSchedule",
    "HostFlapper",
    "HostOutageSpec",
    "LinkChurnSpec",
    "LinkOutageSpec",
    "PacketChaos",
    "PacketFaultSpec",
    "PartitionSpec",
    "PartitionWindowSpec",
    "ServerOutageSpec",
    "validate_udp_spec",
]
