"""Adversarial packet-level fault injection.

:class:`PacketChaos` attacks the protocol *below* the payload layer but
*above* the links: it taps chosen hosts' inbound ports
(:attr:`repro.io.interfaces.Transport.tap`) and, on a seeded schedule,

* **drops** wire messages outright (datagram loss concentrated on a
  victim — gap filling must repair the holes);
* **corrupts** them (flips the payload checksum, modelling in-flight
  bit rot — receivers must validate and drop);
* **duplicates** them (a second copy arrives shortly after — receivers
  must suppress duplicate control traffic);
* **delays** them (adversarial timing skew — adaptive deadlines must
  absorb it, fixed ones thrash);
* **replays** stale copies much later (receivers must not let an old
  AttachAck or InfoMsg wind protocol state backwards).

This is deliberately *receiver-side* injection: link loss/duplication
(:class:`repro.net.link.LinkSpec`) models an unreliable network, while
PacketChaos models what the paper's end-to-end argument actually has to
survive — garbage arriving at a correct host.  Faults compose with
every other injector through :class:`repro.chaos.plan.ChaosPlan`
(``ChaosSpec.packet_faults``), which also enforces the heal-by horizon:
``stop()`` cancels every pending injection, so no chaos-made packet can
arrive after the plan has healed.

Backend-agnostic since the sans-IO port: the injector speaks only the
:class:`~repro.io.interfaces.Runtime` contract (``start_timer`` /
``cancel_timer`` / ``rng`` / ``trace`` / ``counter``) and the uniform
``tap``/``inject`` port surface every :class:`~repro.io.interfaces.
Transport` exposes, so the same seeded spec runs against the
discrete-event network *and* against real UDP sockets
(:class:`~repro.chaos.nemesis.ChaosNemesis`).  The port surface is
either a sim ``Network`` (``hosts()``/``host_port()``) or any mapping
of host id → transport (e.g. ``UdpBroadcastSystem.transports``).

Determinism: all draws come from one named RNG stream, and on the sim
backend packet arrival order is itself deterministic, so a (seed, spec)
pair replays the identical fault sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.wire import corrupted_copy
from ..io.interfaces import Runtime, TimerHandle, Transport, as_runtime
from ..net import HostId, Packet

_INF = float("inf")


@dataclass(frozen=True)
class PacketFaultSpec:
    """One packet-fault rule: who it hits, when, and with what mix.

    ``src``/``dst`` name hosts (``"*"`` matches any); the rule applies
    to packets *received by* ``dst`` during ``[start, end)``.  Each
    probability is drawn independently per matching packet, in the
    fixed order drop → corrupt → duplicate → replay → delay.
    """

    src: str = "*"
    dst: str = "*"
    start: float = 0.0
    end: float = _INF
    drop_prob: float = 0.0
    corrupt_prob: float = 0.0
    dup_prob: float = 0.0
    delay_prob: float = 0.0
    #: mean extra delay for delayed packets (actual: uniform 0.5x–1.5x)
    delay: float = 0.5
    replay_prob: float = 0.0
    #: how much later the stale copy of a replayed packet arrives
    replay_lag: float = 2.0
    #: how much later a duplicated packet's second copy arrives
    dup_lag: float = 0.05

    def __post_init__(self) -> None:
        for name in ("drop_prob", "corrupt_prob", "dup_prob", "delay_prob",
                     "replay_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"{name} must be a probability in [0, 1], got {value}")
        for name in ("delay", "replay_lag", "dup_lag"):
            if getattr(self, name) < 0.0:
                raise ValueError(f"{name} must be non-negative")
        if self.end <= self.start:
            raise ValueError(f"end {self.end} must be after start {self.start}")


class PacketChaos:
    """Inject :class:`PacketFaultSpec` faults into hosts' inbound paths."""

    def __init__(
        self,
        runtime: Any,
        ports: Any,
        specs: Sequence[PacketFaultSpec],
        rng_stream: str = "chaos.packets",
    ) -> None:
        self.runtime: Runtime = as_runtime(runtime)
        #: the port surface: a sim ``Network`` or a host-id → transport map
        self.ports = ports
        self.specs: Tuple[PacketFaultSpec, ...] = tuple(specs)
        self._rng = self.runtime.rng(rng_stream)
        self._running = False
        #: dst host -> its matching rules, resolved once at start()
        self._rules: Dict[HostId, List[PacketFaultSpec]] = {}
        #: (port, our tap) pairs; stop() only removes taps we still own
        #: (an adversary persona may have chained over them)
        self._tapped: List[Tuple] = []
        #: pending scheduled injections, keyed to the destination host so
        #: stop() — and a mid-window crash of that host — can cancel them
        self._pending: Dict[TimerHandle, HostId] = {}

    # -- port surface ------------------------------------------------------

    def _host_ids(self) -> List[HostId]:
        if isinstance(self.ports, Mapping):
            return list(self.ports)
        return list(self.ports.hosts())

    def _port_for(self, host_id: HostId) -> Transport:
        if isinstance(self.ports, Mapping):
            return self.ports[host_id]
        return self.ports.host_port(host_id)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "PacketChaos":
        """Install taps on every matching host port; returns self."""
        if self._running:
            return self
        self._running = True
        for host_id in self._host_ids():
            rules = [s for s in self.specs
                     if s.dst == "*" or s.dst == str(host_id)]
            if not rules:
                continue
            self._rules[host_id] = rules
            port = self._port_for(host_id)
            tap = self._make_tap(port)
            port.tap = tap
            self._tapped.append((port, tap))
        self.runtime.trace("chaos.packets.start", "packet_chaos",
                           tapped=len(self._tapped))
        return self

    def stop(self) -> None:
        """Remove all taps and cancel every pending injection."""
        self._running = False
        for port, tap in self._tapped:
            if port.tap is tap:
                port.tap = None
        self._tapped.clear()
        for handle in self._pending:
            self.runtime.cancel_timer(handle)
        self._pending.clear()
        self.runtime.trace("chaos.packets.stop", "packet_chaos")

    def cancel_pending_for(self, host_id: HostId) -> None:
        """Cancel pending injections destined for ``host_id``.

        A host that crashes mid-window must not have chaos-made
        duplicates, replays, or delayed copies still arriving on its
        port: a real crashed host drops them anyway, and a host that
        *recovers* before the injection fires would otherwise receive
        packets from a network interaction that predates its crash —
        exactly the stale state the crash is supposed to destroy.
        """
        stale = [handle for handle, dst in self._pending.items()
                 if dst == host_id]
        for handle in stale:
            self.runtime.cancel_timer(handle)
            del self._pending[handle]
        if stale:
            self.runtime.counter(
                "chaos.packet.cancelled_crashed").inc(len(stale))
            self.runtime.trace("chaos.packets.cancel_crashed",
                               str(host_id), cancelled=len(stale))

    # -- injection ---------------------------------------------------------

    def _match(self, rules: List[PacketFaultSpec], src: HostId,
               now: float) -> Optional[PacketFaultSpec]:
        src_name = str(src)
        for spec in rules:
            if spec.src != "*" and spec.src != src_name:
                continue
            if spec.start <= now < spec.end:
                return spec
        return None

    def _make_tap(self, port):
        rules = self._rules[port.host_id]

        def tap(packet: Packet) -> bool:
            if not self._running:
                return False
            spec = self._match(rules, packet.src, self.runtime.now())
            if spec is None:
                return False
            return self._apply(spec, port, packet)

        return tap

    def _apply(self, spec: PacketFaultSpec, port, packet: Packet) -> bool:
        """Draw and apply ``spec``'s faults; True if the packet was consumed."""
        rng = self._rng
        runtime = self.runtime
        if spec.drop_prob > 0 and rng.random() < spec.drop_prob:
            runtime.counter("chaos.packet.dropped").inc()
            runtime.trace("chaos.packet.drop", str(port.host_id),
                          src=str(packet.src), packet=packet.packet_id)
            return True  # lost: nothing arrives, nothing rides along
        pkt = packet
        touched = False
        if spec.corrupt_prob > 0 and rng.random() < spec.corrupt_prob:
            mangled = corrupted_copy(packet.payload)
            if mangled is not None:
                pkt = packet.fork()
                pkt.payload = mangled  # type: ignore[assignment]
                touched = True
                runtime.counter("chaos.packet.corrupted").inc()
                runtime.trace("chaos.packet.corrupt", str(port.host_id),
                              src=str(packet.src), packet=packet.packet_id)
        if spec.dup_prob > 0 and rng.random() < spec.dup_prob:
            runtime.counter("chaos.packet.duplicated").inc()
            self._later(port, pkt.fork(), spec.dup_lag)
        if spec.replay_prob > 0 and rng.random() < spec.replay_prob:
            runtime.counter("chaos.packet.replayed").inc()
            self._later(port, pkt.fork(), spec.replay_lag)
        if spec.delay_prob > 0 and rng.random() < spec.delay_prob:
            runtime.counter("chaos.packet.delayed").inc()
            extra = spec.delay * rng.uniform(0.5, 1.5)
            runtime.trace("chaos.packet.delay", str(port.host_id),
                          src=str(packet.src), packet=packet.packet_id,
                          extra=extra)
            self._later(port, pkt, extra)
            return True  # the original does not arrive now
        if touched:
            port.inject(pkt)  # corrupted copy replaces the original
            return True
        return False  # duplicates/replays ride along; original proceeds

    def _later(self, port, pkt: Packet, delay: float) -> None:
        """Schedule a tap-bypassing injection, tracked (per destination
        host) for stop() and :meth:`cancel_pending_for`."""

        def fire() -> None:
            self._pending.pop(handle, None)
            port.inject(pkt)

        handle = self.runtime.start_timer(delay, fire)
        self._pending[handle] = port.host_id
