"""Host crash/recovery injectors (the failure model's third leg).

Both injectors drive a broadcast *system*'s ``crash_host`` /
``recover_host`` lifecycle hooks (duck-typed: the tree protocol's
:class:`~repro.core.engine.BroadcastSystem` and the baseline systems
all expose them), so one chaos harness exercises every protocol under
test.  As with link and server failures, the injection is silent — the
protocol must discover crashed peers through its own timeouts.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..net import HostId
from ..sim import Event, Simulator

#: notification hook: called with the host id right after a crash is
#: applied, so composing injectors (chiefly PacketChaos, via ChaosPlan)
#: can cancel in-flight work targeting the now-dead host
CrashHook = Optional[Callable[[HostId], None]]


class HostCrashSchedule:
    """Scheduled host crashes and recoveries (chainable, like the link
    and server schedules in :mod:`repro.net.failures`)."""

    def __init__(self, sim: Simulator, system,
                 on_crash: CrashHook = None) -> None:
        self.sim = sim
        self.system = system
        self._on_crash = on_crash

    def crash(self, time: float, host: HostId) -> "HostCrashSchedule":
        """Crash ``host`` at ``time`` (chainable)."""
        self.sim.schedule_at(time, self._apply, host, False)
        return self

    def recover(self, time: float, host: HostId) -> "HostCrashSchedule":
        """Recover ``host`` at ``time`` (chainable)."""
        self.sim.schedule_at(time, self._apply, host, True)
        return self

    def outage(self, start: float, end: float, host: HostId) -> "HostCrashSchedule":
        """``host`` is down during [start, end)."""
        if end <= start:
            raise ValueError(f"outage end {end} must be after start {start}")
        return self.crash(start, host).recover(end, host)

    def _apply(self, host: HostId, up: bool) -> None:
        if up:
            self.system.recover_host(host)
        else:
            self.system.crash_host(host)
            if self._on_crash is not None:
                self._on_crash(host)
        self.sim.trace.emit("failure.apply", "schedule", host=str(host), up=up)
        self.sim.metrics.counter(
            "net.failures.host.up" if up else "net.failures.host.down").inc()


class HostFlapper:
    """Randomly crashes and recovers a set of hosts (host churn).

    Mirrors :class:`repro.net.failures.LinkFlapper`: each managed host
    alternates up/down with exponentially distributed durations drawn
    from one dedicated RNG stream, so a given simulator seed yields an
    identical churn sequence.  The source is excluded by default — pass
    ``hosts`` explicitly to churn it too.
    """

    def __init__(
        self,
        sim: Simulator,
        system,
        hosts: Optional[Iterable[HostId]] = None,
        mean_up: float = 30.0,
        mean_down: float = 5.0,
        rng_stream: str = "chaos.hostflapper",
        on_crash: CrashHook = None,
    ) -> None:
        if mean_up <= 0 or mean_down <= 0:
            raise ValueError("mean_up and mean_down must be positive")
        self.sim = sim
        self.system = system
        self._on_crash = on_crash
        if hosts is None:
            hosts = [h for h in system.built.hosts if h != system.source_id]
        self.hosts: List[HostId] = sorted(hosts)
        if not self.hosts:
            raise ValueError("HostFlapper needs at least one host to churn")
        self.mean_up = mean_up
        self.mean_down = mean_down
        self._rng = sim.rng.stream(rng_stream)
        self._running = False
        #: per-host pending transition event, cancelled on stop() so a
        #: stopped flapper can never crash/recover a host afterwards
        self._pending: Dict[HostId, Event] = {}

    def start(self) -> "HostFlapper":
        """Start periodic activity; returns self for chaining."""
        self._running = True
        for host in self.hosts:
            self._arm(self.mean_up, self._crash, host)
        return self

    def stop(self) -> None:
        """Stop all transitions, including any already scheduled
        (possibly leaving hosts crashed — see :meth:`heal`).

        Pending crash/recover events are cancelled — without that, a
        timer armed before stop() could crash a host *after* a chaos
        plan's heal-by horizon and break its guarantee.
        """
        self._running = False
        for event in self._pending.values():
            self.sim.try_cancel(event)
        self._pending.clear()

    def _arm(self, mean: float, action, host: HostId) -> None:
        self._pending[host] = self.sim.schedule(
            self._rng.expovariate(1.0 / mean), action, host)

    def heal(self) -> None:
        """Stop and recover every managed host still down.

        This is the flapper's heal-by guarantee: after ``heal()`` no
        host remains crashed on this flapper's account.
        """
        self.stop()
        for host in self.hosts:
            self.system.recover_host(host)

    def _crash(self, host: HostId) -> None:
        if not self._running:
            return
        self._pending.pop(host, None)
        self.system.crash_host(host)
        if self._on_crash is not None:
            self._on_crash(host)
        self.sim.metrics.counter("net.failures.host.down").inc()
        self._arm(self.mean_down, self._recover, host)

    def _recover(self, host: HostId) -> None:
        if not self._running:
            return
        self._pending.pop(host, None)
        self.system.recover_host(host)
        self.sim.metrics.counter("net.failures.host.up").inc()
        self._arm(self.mean_up, self._crash, host)
