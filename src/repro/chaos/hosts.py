"""Host crash/recovery injectors (the failure model's third leg).

Both injectors drive a broadcast *system*'s ``crash_host`` /
``recover_host`` lifecycle hooks (duck-typed: the tree protocol's
:class:`~repro.core.engine.BroadcastSystem`, the baseline systems, and
the real-socket :class:`~repro.io.node.UdpBroadcastSystem` all expose
them), so one chaos harness exercises every protocol under test.  As
with link and server failures, the injection is silent — the protocol
must discover crashed peers through its own timeouts.

Backend-agnostic since the sans-IO port: scheduling goes through the
:class:`~repro.io.interfaces.Runtime` contract (``start_timer`` /
``cancel_timer`` / ``rng``), so the same seeded injectors run on the
discrete-event simulator and on the wall-clock asyncio backend.  A bare
:class:`~repro.sim.Simulator` is still accepted and coerced via
:func:`~repro.io.interfaces.as_runtime`.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable, Dict, Iterable, List, Optional

from ..io.interfaces import Runtime, TimerHandle, as_runtime
from ..net import HostId

#: notification hook: called with the host id right after a crash is
#: applied, so composing injectors (chiefly PacketChaos, via ChaosPlan)
#: can cancel in-flight work targeting the now-dead host
CrashHook = Optional[Callable[[HostId], None]]


def _default_churn_hosts(system: Any) -> List[HostId]:
    """Every host but the source, on any system flavor.

    Sim-backed systems carry the topology in ``built``; UDP deployments
    list their members directly in ``hosts``.
    """
    built = getattr(system, "built", None)
    members = built.hosts if built is not None else list(system.hosts)
    return [h for h in members if h != system.source_id]


class HostCrashSchedule:
    """Scheduled host crashes and recoveries (chainable, like the link
    and server schedules in :mod:`repro.net.failures`)."""

    def __init__(self, sim: Any, system: Any,
                 on_crash: CrashHook = None) -> None:
        self.runtime: Runtime = as_runtime(sim)
        self.system = system
        self._on_crash = on_crash

    def crash(self, time: float, host: HostId) -> "HostCrashSchedule":
        """Crash ``host`` at protocol time ``time`` (chainable)."""
        self._at(time, partial(self._apply, host, False))
        return self

    def recover(self, time: float, host: HostId) -> "HostCrashSchedule":
        """Recover ``host`` at protocol time ``time`` (chainable)."""
        self._at(time, partial(self._apply, host, True))
        return self

    def outage(self, start: float, end: float, host: HostId) -> "HostCrashSchedule":
        """``host`` is down during [start, end)."""
        if end <= start:
            raise ValueError(f"outage end {end} must be after start {start}")
        return self.crash(start, host).recover(end, host)

    def _at(self, when: float, callback: Callable[[], None]) -> None:
        self.runtime.start_timer(when - self.runtime.now(), callback)

    def _apply(self, host: HostId, up: bool) -> None:
        if up:
            self.system.recover_host(host)
        else:
            self.system.crash_host(host)
            if self._on_crash is not None:
                self._on_crash(host)
        self.runtime.trace("failure.apply", "schedule", host=str(host), up=up)
        self.runtime.counter(
            "net.failures.host.up" if up else "net.failures.host.down").inc()


class HostFlapper:
    """Randomly crashes and recovers a set of hosts (host churn).

    Mirrors :class:`repro.net.failures.LinkFlapper`: each managed host
    alternates up/down with exponentially distributed durations drawn
    from one dedicated RNG stream, so a given seed yields an identical
    churn sequence.  The source is excluded by default — pass ``hosts``
    explicitly to churn it too.
    """

    def __init__(
        self,
        sim: Any,
        system: Any,
        hosts: Optional[Iterable[HostId]] = None,
        mean_up: float = 30.0,
        mean_down: float = 5.0,
        rng_stream: str = "chaos.hostflapper",
        on_crash: CrashHook = None,
    ) -> None:
        if mean_up <= 0 or mean_down <= 0:
            raise ValueError("mean_up and mean_down must be positive")
        self.runtime: Runtime = as_runtime(sim)
        self.system = system
        self._on_crash = on_crash
        if hosts is None:
            hosts = _default_churn_hosts(system)
        self.hosts: List[HostId] = sorted(hosts)
        if not self.hosts:
            raise ValueError("HostFlapper needs at least one host to churn")
        self.mean_up = mean_up
        self.mean_down = mean_down
        self._rng = self.runtime.rng(rng_stream)
        self._running = False
        #: per-host pending transition timer, cancelled on stop() so a
        #: stopped flapper can never crash/recover a host afterwards
        self._pending: Dict[HostId, TimerHandle] = {}

    def start(self) -> "HostFlapper":
        """Start periodic activity; returns self for chaining."""
        self._running = True
        for host in self.hosts:
            self._arm(self.mean_up, self._crash, host)
        return self

    def stop(self) -> None:
        """Stop all transitions, including any already scheduled
        (possibly leaving hosts crashed — see :meth:`heal`).

        Pending crash/recover timers are cancelled — without that, a
        timer armed before stop() could crash a host *after* a chaos
        plan's heal-by horizon and break its guarantee.
        """
        self._running = False
        for handle in self._pending.values():
            self.runtime.cancel_timer(handle)
        self._pending.clear()

    def _arm(self, mean: float, action: Callable[[HostId], None],
             host: HostId) -> None:
        delay = self._rng.expovariate(1.0 / mean)
        self._pending[host] = self.runtime.start_timer(
            delay, partial(action, host))

    def heal(self) -> None:
        """Stop and recover every managed host still down.

        This is the flapper's heal-by guarantee: after ``heal()`` no
        host remains crashed on this flapper's account.
        """
        self.stop()
        for host in self.hosts:
            self.system.recover_host(host)

    def _crash(self, host: HostId) -> None:
        if not self._running:
            return
        self._pending.pop(host, None)
        self.system.crash_host(host)
        if self._on_crash is not None:
            self._on_crash(host)
        self.runtime.counter("net.failures.host.down").inc()
        self._arm(self.mean_down, self._recover, host)

    def _recover(self, host: HostId) -> None:
        if not self._running:
            return
        self._pending.pop(host, None)
        self.system.recover_host(host)
        self.runtime.counter("net.failures.host.up").inc()
        self._arm(self.mean_up, self._crash, host)
