"""ChaosNemesis: the wall-clock chaos orchestrator for real UDP runs.

:class:`~repro.chaos.plan.ChaosPlan` drives a *simulated* deployment;
link, server, and partition faults are sim-network constructs with no
real-socket analogue (localhost UDP has no links to cut).  The
**backend-agnostic subset** of a :class:`~repro.chaos.plan.ChaosSpec` —
host crashes, host churn, packet faults — uses only the
:class:`~repro.io.interfaces.Runtime` timer/RNG contract and the
uniform ``tap``/``inject`` port surface, so the *same injector classes*
(:class:`~repro.chaos.hosts.HostCrashSchedule`,
:class:`~repro.chaos.hosts.HostFlapper`,
:class:`~repro.chaos.packets.PacketChaos`) run unmodified against a
:class:`~repro.io.node.UdpBroadcastSystem`.  ChaosNemesis is the
orchestrator that aims them: it validates the spec is UDP-runnable
(rejecting sim-only fault kinds by name), installs the injectors over
``system.transports``, runs the
:class:`~repro.verify.monitor.InvariantMonitor` oracle over the live
trace stream, and enforces the heal-by guarantee.

Heal-by under a wall clock: in-sim the heal timer fires at *exactly*
``heal_by`` virtual seconds; under asyncio it fires when the event loop
gets around to it — protocol time ``heal_by`` plus scheduling noise.
:meth:`wait_healed` therefore awaits the heal with a wall-clock
deadline of the *remaining* protocol seconds (scaled by the runtime's
``time_scale``) plus explicit slack, and raises if the loop never
delivered the timer — a hung loop must fail the run, not hang the
harness.  After the heal, every churner is stopped, every managed host
recovered, and every pending packet injection cancelled — the same
post-horizon quiescence ChaosPlan guarantees, so eventual-delivery
assertions mean the same thing on both backends.
"""

from __future__ import annotations

import asyncio
from dataclasses import replace
from typing import Any, List, Optional

from ..io.interfaces import Runtime, TimerHandle, as_runtime
from ..net import HostId
from ..verify.monitor import InvariantMonitor
from .hosts import HostCrashSchedule, HostFlapper
from .packets import PacketChaos
from .plan import ChaosSpec


def validate_udp_spec(spec: ChaosSpec) -> None:
    """Reject spec legs that only exist on the simulated network.

    The error names the offending fault kind so a spec written for the
    sim can be ported deliberately rather than silently under-injected.
    """
    sim_only = (
        ("link_outages", spec.link_outages),
        ("server_outages", spec.server_outages),
        ("partitions", spec.partitions),
        ("window_partitions", spec.window_partitions),
        ("link_churn", spec.link_churn),
        ("adversaries", spec.adversaries),
    )
    for kind, legs in sim_only:
        if legs:
            raise ValueError(
                f"ChaosSpec.{kind} is a simulated-network fault kind with "
                f"no real-UDP analogue; ChaosNemesis runs the "
                f"backend-agnostic subset only (host_outages, host_churn, "
                f"packet_faults), got {len(legs)} {kind} leg(s)")


class ChaosNemesis:
    """Orchestrate the UDP-runnable subset of a ChaosSpec, with oracle.

    Args:
        system: a :class:`~repro.io.node.UdpBroadcastSystem` (duck-typed:
            needs ``runtime``, ``transports``, ``crash_host`` /
            ``recover_host``, and the monitor's oracle surface).
        spec: the declarative fault plan; must pass
            :func:`validate_udp_spec`.
        rng_prefix: namespace for the injectors' RNG streams (matching
            ChaosPlan's, so seed-matched runs draw identical schedules).
        monitor: sample the §4.3 invariants during the run (on by
            default; the report is the run's safety verdict).
        sample_period / stable_window: monitor tuning, protocol seconds.
    """

    def __init__(
        self,
        system: Any,
        spec: ChaosSpec,
        rng_prefix: str = "chaos",
        *,
        monitor: bool = True,
        sample_period: float = 1.0,
        stable_window: float = 20.0,
    ) -> None:
        validate_udp_spec(spec)
        self.system = system
        self.spec = spec
        self.runtime: Runtime = as_runtime(system.runtime)
        self._rng_prefix = rng_prefix
        self.healed = False
        self._heal_event = asyncio.Event()
        self._heal_timer: Optional[TimerHandle] = None
        self._host_flappers: List[HostFlapper] = []
        self._packet_chaos: List[PacketChaos] = []
        self.monitor: Optional[InvariantMonitor] = (
            InvariantMonitor(system, sample_period=sample_period,
                             stable_window=stable_window)
            if monitor else None)

    def start(self) -> "ChaosNemesis":
        """Install every injector and arm the heal timer; returns self.

        Call with the event loop running (timers need it) and the
        system's sockets open (packet taps attach to live transports).
        """
        spec = self.spec
        if spec.host_outages:
            schedule = HostCrashSchedule(self.runtime, self.system,
                                         on_crash=self._on_host_crash)
            for outage in spec.host_outages:
                schedule.outage(outage.start, outage.end,
                                HostId(outage.host))
        for idx, churn in enumerate(spec.host_churn):
            self._host_flappers.append(HostFlapper(
                self.runtime, self.system,
                hosts=[HostId(h) for h in churn.hosts],
                mean_up=churn.mean_up, mean_down=churn.mean_down,
                rng_stream=f"{self._rng_prefix}.hosts.{idx}",
                on_crash=self._on_host_crash).start())
        if spec.packet_faults:
            clamped = tuple(replace(f, end=min(f.end, spec.heal_by))
                            for f in spec.packet_faults)
            self._packet_chaos.append(PacketChaos(
                self.runtime, self.system.transports, clamped,
                rng_stream=f"{self._rng_prefix}.packets").start())
        if self.monitor is not None:
            self.monitor.start()
        self._heal_timer = self.runtime.start_timer(
            self.spec.heal_by - self.runtime.now(), self._heal)
        self.runtime.trace("chaos.start", "nemesis",
                           heal_by=self.spec.heal_by)
        return self

    def _on_host_crash(self, host: HostId) -> None:
        """Pending chaos injections toward a crashed host die with it."""
        for chaos in self._packet_chaos:
            chaos.cancel_pending_for(host)

    def _heal(self) -> None:
        """The heal-by guarantee: stop churners, repair everything."""
        self._heal_timer = None
        for flapper in self._host_flappers:
            flapper.heal()
        for chaos in self._packet_chaos:
            chaos.stop()
        for host in self.system.crashed_hosts():
            self.system.recover_host(host)
        self.healed = True
        self.runtime.trace("chaos.healed", "nemesis",
                           at=self.runtime.now())
        self._heal_event.set()

    async def wait_healed(self, wall_slack: float = 5.0) -> None:
        """Await the heal with a wall-clock deadline.

        The deadline is the remaining protocol time to ``heal_by``
        scaled to wall seconds, plus ``wall_slack`` wall seconds of
        event-loop noise allowance.  Raises ``TimeoutError`` if the
        loop never fired the heal — a wedged run must fail loudly.
        """
        if self.healed:
            return
        remaining = max(0.0, self.spec.heal_by - self.runtime.now())
        time_scale = getattr(self.runtime, "time_scale", 1.0)
        deadline = remaining * time_scale + wall_slack
        try:
            await asyncio.wait_for(self._heal_event.wait(), timeout=deadline)
        except asyncio.TimeoutError:
            raise TimeoutError(
                f"chaos heal timer did not fire within {deadline:.1f}s "
                f"wall ({remaining:.1f} protocol seconds remaining to "
                f"heal_by={self.spec.heal_by} plus {wall_slack}s slack)")

    def stop(self) -> None:
        """Tear down: force the heal if pending, stop the monitor.

        Idempotent; safe to call before the horizon (the run ends
        early) — injectors are stopped and hosts recovered either way.
        """
        if self._heal_timer is not None:
            self.runtime.cancel_timer(self._heal_timer)
            self._heal_timer = None
        if not self.healed:
            self._heal()
        if self.monitor is not None:
            self.monitor.stop()

    def report(self):
        """The monitor's report (raises if monitoring was disabled)."""
        if self.monitor is None:
            raise RuntimeError("ChaosNemesis was built with monitor=False")
        return self.monitor.report()
