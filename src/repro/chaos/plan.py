"""ChaosPlan: one declarative, seeded spec composing every injector.

A :class:`ChaosSpec` names the faults to inject — host crashes, host
churn, link outages, link churn, server outages, partitions (one-shot
windows or periodic brief-connectivity schedules), packet faults —
plus a ``heal_by`` horizon.  :class:`ChaosPlan` turns the spec into live
injectors and **guarantees** that by ``heal_by`` every injected fault
has been repaired: scheduled outages are validated to end before the
horizon at construction time, and churners are stopped and force-healed
when it arrives.  After ``heal_by`` the network is whole and every host
is up, so a test can assert the paper's reliability claim ("eventually
deliver all messages to all destinations") without racing the fault
injection itself.

Determinism: all randomness (the churners') flows from the simulator's
seeded RNG streams, so a (seed, spec) pair replays the identical fault
sequence.

:class:`ChaosPlan` itself drives a *simulated* network (link, server,
and partition faults are sim-network constructs); its host-crash and
packet-fault legs are backend-agnostic and shared with
:class:`~repro.chaos.nemesis.ChaosNemesis`, the wall-clock orchestrator
that aims the same :class:`ChaosSpec` at a real UDP deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Tuple

from ..io.interfaces import Runtime, as_runtime
from ..net import (
    FailureSchedule,
    HostId,
    LinkFlapper,
    PartitionScheduler,
    ServerOutageSchedule,
    cut_links_between,
)
from ..scenarios.partitions import BriefWindowSchedule, WindowSpec
from ..sim import Simulator
from .adversary import AdversaryHarness, AdversarySpec
from .hosts import HostCrashSchedule, HostFlapper
from .packets import PacketChaos, PacketFaultSpec

_INF = float("inf")


@dataclass(frozen=True)
class HostOutageSpec:
    """Host ``host`` is crashed during [start, end)."""

    host: str
    start: float
    end: float


@dataclass(frozen=True)
class LinkOutageSpec:
    """Link (a, b) is down during [start, end); windows may overlap."""

    a: str
    b: str
    start: float
    end: float


@dataclass(frozen=True)
class ServerOutageSpec:
    """Server ``server`` is down during [start, end)."""

    server: str
    start: float
    end: float


@dataclass(frozen=True)
class PartitionSpec:
    """The network splits into ``groups`` (node names) during [start, end)."""

    groups: Tuple[Tuple[str, ...], ...]
    start: float
    end: float


@dataclass(frozen=True)
class PartitionWindowSpec:
    """``groups`` stay partitioned until ``until``, except during brief
    periodic connectivity windows (the Section 6 trade-off scenario,
    :class:`~repro.scenarios.partitions.BriefWindowSchedule`, as a
    composable chaos fault).  The partition must end before the plan's
    heal-by horizon."""

    groups: Tuple[Tuple[str, ...], ...]
    window: WindowSpec
    until: float

    def __post_init__(self) -> None:
        if len(self.groups) < 2:
            raise ValueError(f"{self}: need at least two groups")
        if self.until <= self.window.first_open:
            raise ValueError(
                f"{self}: until must be after the first window opens")


@dataclass(frozen=True)
class HostChurnSpec:
    """Exponential up/down churn over ``hosts`` until the heal horizon."""

    hosts: Tuple[str, ...]
    mean_up: float = 30.0
    mean_down: float = 5.0


@dataclass(frozen=True)
class LinkChurnSpec:
    """Exponential up/down churn over ``links`` until the heal horizon."""

    links: Tuple[Tuple[str, str], ...]
    mean_up: float = 30.0
    mean_down: float = 5.0


@dataclass(frozen=True)
class ChaosSpec:
    """Everything a chaos run injects, plus the guaranteed heal horizon."""

    heal_by: float
    host_outages: Tuple[HostOutageSpec, ...] = ()
    link_outages: Tuple[LinkOutageSpec, ...] = ()
    server_outages: Tuple[ServerOutageSpec, ...] = ()
    partitions: Tuple[PartitionSpec, ...] = ()
    #: long-lived partitions relieved only by brief periodic windows;
    #: each must end (and its links be repaired) before ``heal_by``
    window_partitions: Tuple[PartitionWindowSpec, ...] = ()
    host_churn: Tuple[HostChurnSpec, ...] = ()
    link_churn: Tuple[LinkChurnSpec, ...] = ()
    #: packet-level faults (drop/corrupt/duplicate/delay/replay); a
    #: finite rule window must end at or before ``heal_by``, an open
    #: ``end`` (the default, +inf) is clamped to it, and the injector
    #: is stopped — pending injections cancelled — when the horizon
    #: arrives
    packet_faults: Tuple[PacketFaultSpec, ...] = ()
    #: adversarial (Byzantine-ish) host personas.  Deliberately EXEMPT
    #: from the heal-by validation: a misbehaving host is not a fault
    #: the network heals, so the heal-by guarantee covers benign faults
    #: only and reliability verdicts under adversaries are taken over
    #: the correct hosts (see :mod:`repro.chaos.adversary`)
    adversaries: Tuple[AdversarySpec, ...] = ()

    def __post_init__(self) -> None:
        if self.heal_by <= 0:
            raise ValueError("heal_by must be positive")
        for outage in (*self.host_outages, *self.link_outages,
                       *self.server_outages, *self.partitions):
            if outage.end <= outage.start:
                raise ValueError(f"{outage}: end must be after start")
            if outage.end > self.heal_by:
                raise ValueError(
                    f"{outage}: ends after the heal_by horizon {self.heal_by}")
        for windowed in self.window_partitions:
            if windowed.until >= self.heal_by:
                raise ValueError(
                    f"{windowed}: must end before the heal_by horizon "
                    f"{self.heal_by}")
        for churn in (*self.host_churn, *self.link_churn):
            if churn.mean_up <= 0 or churn.mean_down <= 0:
                raise ValueError(f"{churn}: means must be positive")
        for fault in self.packet_faults:
            if fault.start >= self.heal_by:
                raise ValueError(
                    f"{fault}: starts at or after the heal_by horizon "
                    f"{self.heal_by}")
            if fault.end != _INF and fault.end > self.heal_by:
                raise ValueError(
                    f"{fault}: packet-fault window ends at {fault.end}, "
                    f"after the heal_by horizon {self.heal_by} "
                    f"(use the default end=inf to run until the heal)")


class ChaosPlan:
    """Live orchestration of a :class:`ChaosSpec` against one system."""

    def __init__(self, sim: Simulator, system, spec: ChaosSpec,
                 rng_prefix: str = "chaos") -> None:
        self.sim = sim
        #: the backend-agnostic contract used for the heal timer and the
        #: host/packet injectors (link/server/partition injectors still
        #: need the raw simulated network below)
        self.runtime: Runtime = as_runtime(sim)
        self.system = system
        self.spec = spec
        self.network = system.network
        self._rng_prefix = rng_prefix
        self.healed = False
        self._host_flappers: List[HostFlapper] = []
        self._link_flappers: List[LinkFlapper] = []
        self._packet_chaos: List[PacketChaos] = []
        self._adversaries: List[AdversaryHarness] = []
        #: links any churner may leave down at the horizon
        self._churned_links: List[Tuple[str, str]] = []

    def start(self) -> "ChaosPlan":
        """Install every injector and schedule the heal; returns self."""
        spec = self.spec
        if spec.host_outages:
            hosts = HostCrashSchedule(self.runtime, self.system,
                                      on_crash=self._on_host_crash)
            for outage in spec.host_outages:
                hosts.outage(outage.start, outage.end, HostId(outage.host))
        if spec.link_outages:
            links = FailureSchedule(self.sim, self.network)
            for outage in spec.link_outages:
                links.outage(outage.start, outage.end, outage.a, outage.b)
        if spec.server_outages:
            servers = ServerOutageSchedule(self.sim, self.network)
            for outage in spec.server_outages:
                servers.outage(outage.start, outage.end, outage.server)
        for outage in spec.partitions:
            PartitionScheduler(self.sim, self.network).partition(
                [list(group) for group in outage.groups],
                outage.start, outage.end)
        for windowed in spec.window_partitions:
            cut = set()
            for i, group_a in enumerate(windowed.groups):
                for group_b in windowed.groups[i + 1:]:
                    cut.update(cut_links_between(
                        self.network, group_a, group_b))
            BriefWindowSchedule(self.sim, self.network, sorted(cut),
                                windowed.window, windowed.until)
        for idx, churn in enumerate(spec.host_churn):
            self._host_flappers.append(HostFlapper(
                self.runtime, self.system,
                hosts=[HostId(h) for h in churn.hosts],
                mean_up=churn.mean_up, mean_down=churn.mean_down,
                rng_stream=f"{self._rng_prefix}.hosts.{idx}",
                on_crash=self._on_host_crash).start())
        for idx, churn in enumerate(spec.link_churn):
            self._link_flappers.append(LinkFlapper(
                self.sim, self.network, churn.links,
                mean_up=churn.mean_up, mean_down=churn.mean_down,
                rng_stream=f"{self._rng_prefix}.links.{idx}").start())
            self._churned_links.extend(churn.links)
        if spec.packet_faults:
            clamped = tuple(replace(f, end=min(f.end, spec.heal_by))
                            for f in spec.packet_faults)
            self._packet_chaos.append(PacketChaos(
                self.runtime, self.network, clamped,
                rng_stream=f"{self._rng_prefix}.packets").start())
        if spec.adversaries:
            # Installed after PacketChaos so persona taps chain over the
            # packet-fault taps (the persona delegates what it does not
            # consume); NOT stopped at heal — Byzantine hosts persist.
            self._adversaries.append(AdversaryHarness(
                self.sim, self.system, spec.adversaries,
                rng_stream=f"{self._rng_prefix}.adversary").start())
        self.runtime.start_timer(self.spec.heal_by - self.runtime.now(),
                                 self._heal)
        self.runtime.trace("chaos.start", "plan", heal_by=self.spec.heal_by)
        return self

    def adversary_hosts(self) -> frozenset:
        """Names of hosts the spec makes misbehave at any point."""
        return frozenset(spec.host for spec in self.spec.adversaries)

    def _on_host_crash(self, host: HostId) -> None:
        """A plan-managed host crashed: chaos-made packets already in
        flight toward it must die with it, like every other pending
        injection a stopped injector cancels."""
        for chaos in self._packet_chaos:
            chaos.cancel_pending_for(host)

    def _heal(self) -> None:
        """The heal-by guarantee: stop churners, repair everything.

        Adversary personas are deliberately *not* healed: they are not
        faults, and their windows are allowed to outlive the horizon
        (see :class:`~repro.chaos.adversary.AdversarySpec`)."""
        for flapper in self._host_flappers:
            flapper.heal()
        for flapper in self._link_flappers:
            flapper.stop()
        for chaos in self._packet_chaos:
            chaos.stop()
        for a, b in self._churned_links:
            self.network.set_link_state(a, b, up=True)
        self.healed = True
        self.runtime.trace("chaos.healed", "plan")
