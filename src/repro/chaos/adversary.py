"""Adversarial (Byzantine-ish) host misbehavior injection.

Every other injector in this package models *benign* faults: crashes,
flaps, partitions, bit rot.  The paper's sharpest claim, however, is
architectural — the nonprogrammable servers carry no correctness
obligations, the hosts carry all of them — so the sharpest test is a
host that holds up its end of the wire protocol while violating its
*semantics*.  :class:`AdversaryHarness` wraps selected hosts in
misbehaving **personas** by interposing on their network port's send
and receive taps (:attr:`~repro.net.hostiface.HostPort.send_tap`,
:attr:`~repro.net.hostiface.HostPort.tap`); the host's own protocol
logic keeps running, but what actually crosses the wire is the
persona's edit of it.

Personas (Bonomi/Farina/Tixeuil's locally-bounded model is the frame:
``k`` misbehaving hosts, placed, and we ask which invariants survive):

* ``stale_info`` — the host's outbound INFO advertisements are frozen
  at the snapshot taken when the persona activates, so the host
  forever under-claims what it holds (neighbors waste gap-fill traffic
  on it; as a parent it advertises no progress).
* ``equivocate`` — seqno equivocation: different INFO claims to
  different neighbors.  Half its peers (by name CRC parity) see the
  truth; the other half see a claim inflated by ``lie_ahead`` phantom
  seqnos, baiting them into attaching to a parent that can never
  supply the promised messages.
* ``ack_no_deliver`` — claims receipt without delivering.  Inbound
  data is swallowed before the protocol sees it, yet outbound INFO
  advertises the swallowed seqnos (tree), or an ``AckMsg`` is returned
  anyway (basic), so the supplier crosses the message off and never
  retransmits.
* ``selective_forward`` — forwards control traffic faithfully (so it
  stays attached and keeps its children) but drops each outbound data
  message with probability ``drop_frac``: a data black hole sitting on
  a live branch of the tree.
* ``replay_control`` — records its own outbound control messages and
  periodically re-sends stale ones with *fresh* uids, so duplicate
  suppression (which keys on uid) cannot screen them out and receivers
  must tolerate protocol state apparently winding backwards.

All persona edits go through :func:`repro.core.wire.forged_copy`, so
every forged payload carries a *valid* checksum: wire hardening
catches accidents, not malice, and these experiments measure exactly
what remains when it doesn't.  The info-editing personas are
duck-typed on the advertisement field rather than a concrete class,
so they apply equally to the tree's ``InfoMsg``/``AttachAck`` and the
epidemic baseline's ``Digest`` — the same lie, told in whichever wire
vocabulary the protocol under test speaks.

Composition and the heal-by horizon
-----------------------------------

``AdversarySpec`` windows compose into :class:`~repro.chaos.ChaosSpec`
(``adversaries=...``) but are deliberately **exempt** from the rule
that every fault ends before ``heal_by``: a Byzantine host is not a
fault the network heals, and with a forced end the tree protocol
simply recovers and no containment question remains.  The heal-by
guarantee is therefore scoped to *benign* faults; reliability verdicts
under adversaries are taken over the correct hosts only (see
:mod:`repro.verify.containment` and :mod:`repro.fuzz.properties`).

Determinism: all randomness comes from one named RNG stream, persona
activation/deactivation are simulator events, and the taps are pure
functions of (payload, destination, rng), so a (seed, spec) pair
replays the identical misbehavior sequence.  With no adversaries
configured nothing is installed and no RNG stream is created — runs
are byte-identical to a build without this module.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.seqnoset import SeqnoSet
from ..core.wire import DataMsg, forged_copy
from ..net import HostId, Packet, Payload
from ..sim import Event, Simulator

_INF = float("inf")

#: every persona the harness implements, in canonical order
PERSONAS: Tuple[str, ...] = (
    "stale_info",
    "equivocate",
    "ack_no_deliver",
    "selective_forward",
    "replay_control",
)

#: how many of its own control sends a replay_control persona remembers
_REPLAY_MEMORY = 32


def _info_field(payload: Payload) -> Optional[str]:
    """The payload's INFO-advertisement field name, if it carries one.

    Duck-typed on purpose: the tree's ``InfoMsg``, its ``AttachAck``
    (``parent_info``), and the epidemic baseline's ``Digest`` all
    advertise a :class:`SeqnoSet`, so the info-editing personas apply
    to whichever protocol is under test without importing any of them.
    """
    if isinstance(getattr(payload, "info", None), SeqnoSet):
        return "info"
    if isinstance(getattr(payload, "parent_info", None), SeqnoSet):
        return "parent_info"
    return None


@dataclass(frozen=True)
class AdversarySpec:
    """Host ``host`` runs ``persona`` during [start, end).

    ``end`` defaults to forever: a Byzantine host usually stays
    Byzantine, and (unlike every benign fault) adversary windows are
    exempt from the ChaosSpec heal-by validation.  A finite ``end``
    models a compromised-then-cleaned host; at ``end`` the taps come
    off and the host is honest again (its internal state was always
    maintained honestly — only its wire behavior lied).
    """

    host: str
    persona: str
    start: float = 0.0
    end: float = _INF
    #: equivocate: phantom seqnos claimed beyond the true maximum
    lie_ahead: int = 3
    #: selective_forward: per-message drop probability for data
    drop_frac: float = 1.0
    #: replay_control: seconds between stale re-sends
    replay_interval: float = 5.0

    def __post_init__(self) -> None:
        if self.persona not in PERSONAS:
            raise ValueError(
                f"unknown persona {self.persona!r}; expected one of {PERSONAS}")
        if self.end <= self.start:
            raise ValueError(f"end {self.end} must be after start {self.start}")
        if self.lie_ahead < 1:
            raise ValueError("lie_ahead must be at least 1")
        if not 0.0 <= self.drop_frac <= 1.0:
            raise ValueError(
                f"drop_frac must be a probability in [0, 1], got {self.drop_frac}")
        if self.replay_interval <= 0:
            raise ValueError("replay_interval must be positive")


class _Persona:
    """One active persona on one host: the pair of installed taps."""

    def __init__(self, harness: "AdversaryHarness", spec: AdversarySpec,
                 port) -> None:
        self.harness = harness
        self.sim = harness.sim
        self.spec = spec
        self.port = port
        self._rng = harness._rng
        self._active = False
        self._cancelled = False
        #: previously installed taps (e.g. PacketChaos's); we chain to them
        self._prev_recv = None
        self._prev_send = None
        self._my_recv = None
        self._my_send = None
        # -- persona state --
        self._stale_snapshot: Optional[SeqnoSet] = None
        self._claimed = SeqnoSet()
        self._replay_log: List[Tuple[HostId, Payload]] = []
        self._replay_event: Optional[Event] = None

    # -- lifecycle ---------------------------------------------------------

    def install(self) -> None:
        if self._cancelled or self._active:
            return
        self._active = True
        self._prev_recv = self.port.tap
        self._prev_send = self.port.send_tap
        self._my_recv = self._recv_tap
        self._my_send = self._send_tap
        self.port.tap = self._my_recv
        self.port.send_tap = self._my_send
        if self.spec.persona == "replay_control":
            self._arm_replay()
        self.sim.trace.emit("chaos.adversary.on", str(self.port.host_id),
                            persona=self.spec.persona)
        self.sim.metrics.counter("chaos.adversary.active").inc()

    def uninstall(self) -> None:
        if not self._active:
            return
        self._active = False
        # Only restore taps we still own; someone may have chained over us.
        if self.port.tap is self._my_recv:
            self.port.tap = self._prev_recv
        if self.port.send_tap is self._my_send:
            self.port.send_tap = self._prev_send
        if self._replay_event is not None:
            self.sim.try_cancel(self._replay_event)
            self._replay_event = None
        self.sim.trace.emit("chaos.adversary.off", str(self.port.host_id),
                            persona=self.spec.persona)

    # -- tap plumbing ------------------------------------------------------

    def _recv_tap(self, packet: Packet) -> bool:
        if self._active and self._handle_recv(packet):
            return True
        prev = self._prev_recv
        return prev(packet) if prev is not None else False

    def _send_tap(self, dst: HostId, payload: Payload) -> bool:
        if self._active and self._handle_send(dst, payload):
            return True
        prev = self._prev_send
        return prev(dst, payload) if prev is not None else False

    # -- persona behavior --------------------------------------------------

    def _handle_recv(self, packet: Packet) -> bool:
        """True if the persona consumed the inbound packet."""
        if self.spec.persona != "ack_no_deliver":
            return False
        payload = packet.payload
        if not isinstance(payload, DataMsg):
            return False
        # Swallow the data: the host never delivers or forwards it, but
        # remembers the seqno so outbound claims (INFO or an AckMsg)
        # assert receipt and the supplier crosses it off for good.
        self._claimed.add(payload.seq)
        self.sim.metrics.counter("chaos.adversary.swallowed").inc()
        self.sim.trace.emit("chaos.adversary.swallow", str(self.port.host_id),
                            src=str(packet.src), seq=payload.seq)
        ack = self.harness._make_ack(payload, self.port.host_id)
        if ack is not None:
            self.port.send_raw(packet.src, ack)
        return True

    def _handle_send(self, dst: HostId, payload: Payload) -> bool:
        """True if the persona consumed (dropped or replaced) the send."""
        persona = self.spec.persona
        if persona == "selective_forward":
            if (isinstance(payload, DataMsg)
                    and self._rng.random() < self.spec.drop_frac):
                self.sim.metrics.counter("chaos.adversary.dropped_data").inc()
                self.sim.trace.emit("chaos.adversary.drop",
                                    str(self.port.host_id), dst=str(dst),
                                    seq=payload.seq)
                return True
            return False
        if persona == "stale_info":
            forged = self._stale_edit(payload)
        elif persona == "equivocate":
            forged = self._equivocate_edit(dst, payload)
        elif persona == "ack_no_deliver":
            forged = self._claim_edit(payload)
        else:  # replay_control: record, send unmodified
            self._record_for_replay(dst, payload)
            return False
        if forged is None:
            return False
        self.sim.metrics.counter("chaos.adversary.forged").inc()
        self.port.send_raw(dst, forged)
        return True

    def _stale_edit(self, payload: Payload) -> Optional[Payload]:
        """Freeze every outbound INFO advertisement at activation time."""
        field = _info_field(payload)
        if field == "info":
            if self._stale_snapshot is None:
                self._stale_snapshot = payload.info.copy()
                return None  # the first advertisement is the honest one
            return forged_copy(payload, info=self._stale_snapshot)
        if field == "parent_info" and self._stale_snapshot is not None:
            return forged_copy(payload, parent_info=self._stale_snapshot)
        return None

    def _equivocate_edit(self, dst: HostId,
                         payload: Payload) -> Optional[Payload]:
        """Tell half the neighbors the truth, the other half a claim
        ``lie_ahead`` seqnos past it (a deterministic per-peer split,
        so each neighbor consistently sees one story)."""
        field = _info_field(payload)
        if field is None:
            return None
        if zlib.crc32(str(dst).encode("utf-8")) % 2 == 0:
            return None  # this neighbor gets the honest story
        true_info: SeqnoSet = getattr(payload, field)
        inflated = true_info.copy()
        top = inflated.max_seqno
        inflated.add_range(top + 1, top + self.spec.lie_ahead)
        self.sim.metrics.counter("chaos.adversary.equivocated").inc()
        return forged_copy(payload, **{field: inflated})

    def _claim_edit(self, payload: Payload) -> Optional[Payload]:
        """Advertise the swallowed seqnos as if they had been delivered."""
        if _info_field(payload) != "info" or not self._claimed.max_seqno:
            return None
        merged = payload.info.copy()
        merged.update(self._claimed)
        return forged_copy(payload, info=merged)

    # -- replay_control ----------------------------------------------------

    def _record_for_replay(self, dst: HostId, payload: Payload) -> None:
        if getattr(payload, "uid", None) is None:
            return  # only control traffic carries uids worth replaying
        self._replay_log.append((dst, payload))
        if len(self._replay_log) > _REPLAY_MEMORY:
            self._replay_log.pop(0)

    def _arm_replay(self) -> None:
        self._replay_event = self.sim.schedule(
            self.spec.replay_interval, self._replay_tick)

    def _replay_tick(self) -> None:
        if not self._active:
            return
        if self._replay_log:
            # Oldest entries are the most out of date, hence the most
            # confusing; a fresh uid defeats duplicate suppression.
            dst, payload = self._replay_log[
                self._rng.randrange(len(self._replay_log))]
            self.sim.metrics.counter("chaos.adversary.replayed").inc()
            self.sim.trace.emit("chaos.adversary.replay",
                                str(self.port.host_id), dst=str(dst),
                                payload_kind=payload.kind)
            self.port.send_raw(dst, forged_copy(payload, uid=0))
        self._arm_replay()


class AdversaryHarness:
    """Installs :class:`AdversarySpec` personas on a system's hosts."""

    def __init__(
        self,
        sim: Simulator,
        system,
        specs: Sequence[AdversarySpec],
        rng_stream: str = "chaos.adversary",
    ) -> None:
        self.sim = sim
        self.system = system
        self.specs: Tuple[AdversarySpec, ...] = tuple(specs)
        for spec in self.specs:
            if spec.host == str(system.source_id):
                raise ValueError(
                    f"{spec}: the source cannot be an adversary — with a "
                    f"lying source every delivery claim is vacuous")
        self._rng = sim.rng.stream(rng_stream)
        self._personas: List[_Persona] = []
        self._started = False

    def adversary_hosts(self) -> frozenset:
        """Names of hosts that misbehave at any point in the run."""
        return frozenset(spec.host for spec in self.specs)

    def start(self) -> "AdversaryHarness":
        """Schedule every persona's activation window; returns self."""
        if self._started:
            return self
        self._started = True
        for spec in self.specs:
            persona = _Persona(
                self, spec, self.system.network.host_port(HostId(spec.host)))
            self._personas.append(persona)
            self.sim.schedule_at(spec.start, persona.install)
            if spec.end != _INF:
                self.sim.schedule_at(spec.end, persona.uninstall)
        self.sim.trace.emit("chaos.adversary.start", "adversary",
                            personas=len(self._personas))
        return self

    def stop(self) -> None:
        """Deactivate every persona immediately and for good (taps
        restored; activation windows that have not opened yet never
        will)."""
        for persona in self._personas:
            persona._cancelled = True
            persona.uninstall()

    # ------------------------------------------------------------------

    def _make_ack(self, data: DataMsg, me: HostId):
        """A protocol-correct AckMsg when the system under test uses
        acks (the basic baseline); None for the tree protocol, whose
        receipt claims travel in INFO instead."""
        host = self.system.hosts.get(me)
        source = getattr(host, "source", None)
        config = getattr(host, "config", None)
        if source is None or not hasattr(config, "ack_size_bits"):
            return None
        from ..baseline.basic import AckMsg

        return AckMsg(seq=data.seq, sender=me,
                      size_bits=config.ack_size_bits)
