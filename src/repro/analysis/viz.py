"""ASCII rendering of protocol and network structure.

Used by examples and handy in test failure messages: a picture of the
host parent graph or the physical topology says more than a dict of
parent pointers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..core.engine import BroadcastSystem
from ..net import HostId, Network


def render_parent_graph(system: BroadcastSystem) -> str:
    """The host parent graph as an indented tree (forest if broken).

    Roots are the source plus any currently parentless hosts; a cycle's
    members (unreachable from any root) are listed separately.
    """
    parents = system.parent_edges()
    children: Dict[Optional[HostId], List[HostId]] = {}
    for child, parent in parents.items():
        children.setdefault(parent, []).append(child)

    lines: List[str] = []
    seen: Set[HostId] = set()

    def describe(node: HostId) -> str:
        tags = []
        if node == system.source_id:
            tags.append("source")
        if system.hosts[node].is_cluster_leader:
            tags.append("leader")
        host = system.hosts[node]
        suffix = f"  [{', '.join(tags)}]" if tags else ""
        return f"{node} (max={host.info.max_seqno}){suffix}"

    def walk(node: HostId, depth: int) -> None:
        if node in seen:
            lines.append("  " * depth + f"{node} (!) already shown")
            return
        seen.add(node)
        lines.append("  " * depth + describe(node))
        for child in sorted(children.get(node, [])):
            walk(child, depth + 1)

    roots = sorted(h for h, p in parents.items() if p is None)
    if system.source_id in roots:
        roots.remove(system.source_id)
        roots.insert(0, system.source_id)
    for root in roots:
        walk(root, 0)
    stranded = sorted(h for h in parents if h not in seen)
    if stranded:
        lines.append("(on cycles / stranded:)")
        for node in stranded:
            if node not in seen:
                walk(node, 1)
    return "\n".join(lines)


def render_topology(network: Network) -> str:
    """Servers, attached hosts, and links, grouped by link class."""
    lines = ["servers:"]
    for name in network.server_names():
        server = network.servers[name]
        hosts = ", ".join(sorted(str(h) for h in server.attached)) or "-"
        lines.append(f"  {name}: hosts [{hosts}]")
    cheap, expensive = [], []
    for link_id in sorted(network.links, key=str):
        link = network.links[link_id]
        state = "" if link.up else "  (DOWN)"
        entry = f"  {link_id}{state}"
        (expensive if link.spec.expensive else cheap).append(entry)
    lines.append("cheap links:")
    lines.extend(cheap or ["  -"])
    lines.append("expensive links:")
    lines.extend(expensive or ["  -"])
    return "\n".join(lines)


def render_cluster_view(system: BroadcastSystem) -> str:
    """Each host's believed cluster next to the ground truth."""
    lines = ["true clusters:"]
    for idx, cluster in enumerate(system.network.true_clusters()):
        members = ", ".join(sorted(str(h) for h in cluster))
        lines.append(f"  #{idx}: {{{members}}}")
    lines.append("believed clusters (per host):")
    for host_id in system.built.hosts:
        believed = ", ".join(sorted(str(h) for h in
                                    system.hosts[host_id].cluster.members()))
        lines.append(f"  {host_id}: {{{believed}}}")
    return "\n".join(lines)
