"""Multi-trial aggregation: means, spreads, confidence intervals.

Several experiments average over seeds (E7's brief-window trade-off is
phase-sensitive, for instance).  These helpers turn per-trial rows into
aggregate rows with honest uncertainty estimates, using Student's t
critical values (small-sample correct, no scipy needed).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence

#: two-sided 95% t critical values by degrees of freedom (1..30)
_T95 = [12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
        2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
        2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
        2.048, 2.045, 2.042]


def t_critical_95(dof: int) -> float:
    """Two-sided 95 % Student-t critical value (1.96 beyond 30 dof)."""
    if dof < 1:
        raise ValueError("degrees of freedom must be >= 1")
    if dof <= len(_T95):
        return _T95[dof - 1]
    return 1.96


@dataclass(frozen=True)
class Summary:
    """Aggregate of one measured quantity over trials."""

    n: int
    mean: float
    stddev: float
    ci95_half_width: float

    @property
    def ci_low(self) -> float:
        """Lower bound of the 95% confidence interval."""
        return self.mean - self.ci95_half_width

    @property
    def ci_high(self) -> float:
        """Upper bound of the 95% confidence interval."""
        return self.mean + self.ci95_half_width

    def overlaps(self, other: "Summary") -> bool:
        """Do the two 95 % intervals overlap?  (A cheap significance test.)"""
        return not (self.ci_high < other.ci_low or other.ci_high < self.ci_low)


def summarize(values: Sequence[float]) -> Summary:
    """Mean, sample stddev, and 95 % CI half-width of ``values``."""
    if not values:
        raise ValueError("cannot summarize zero trials")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return Summary(n=1, mean=mean, stddev=0.0,
                       ci95_half_width=float("nan"))
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    stddev = math.sqrt(var)
    half = t_critical_95(n - 1) * stddev / math.sqrt(n)
    return Summary(n=n, mean=mean, stddev=stddev, ci95_half_width=half)


def aggregate_rows(rows: List[Dict[str, Any]], group_by: Sequence[str],
                   measures: Sequence[str]) -> List[Dict[str, Any]]:
    """Group per-trial rows and summarize each measure.

    Output rows carry the grouping keys, plus ``<measure>_mean`` /
    ``<measure>_ci95`` for each measure and a ``trials`` count.  Group
    order follows first appearance.
    """
    groups: Dict[tuple, List[Dict[str, Any]]] = {}
    order: List[tuple] = []
    for row in rows:
        key = tuple(row[k] for k in group_by)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)
    out = []
    for key in order:
        members = groups[key]
        aggregated: Dict[str, Any] = dict(zip(group_by, key))
        aggregated["trials"] = len(members)
        for measure in measures:
            summary = summarize([m[measure] for m in members])
            aggregated[f"{measure}_mean"] = summary.mean
            aggregated[f"{measure}_ci95"] = summary.ci95_half_width
        out.append(aggregated)
    return out
