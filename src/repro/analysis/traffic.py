"""Traffic decomposition and congestion analysis (Section 5).

Two of the paper's qualitative claims need per-link numbers:

* the basic algorithm "can cause congestion of the source host's
  server" because every copy leaves through one access link, while the
  tree protocol spreads the load (experiment E5);
* the tree protocol's control traffic is "totally independent of the
  number of data messages" and tunable (experiment E6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..net import HostId, Network
from ..sim import Simulator


@dataclass(frozen=True)
class TrafficReport:
    """Totals of host-to-host traffic by payload class."""

    data_sent: float
    control_sent: float
    data_recv: float
    control_recv: float

    @property
    def control_fraction_sent(self) -> float:
        """Control share of all host-to-host sends."""
        total = self.data_sent + self.control_sent
        return self.control_sent / total if total else 0.0


def traffic_report(sim: Simulator) -> TrafficReport:
    """Host-to-host traffic totals by payload class."""
    m = sim.metrics
    return TrafficReport(
        data_sent=m.counter("net.h2h.sent.kind.data").value,
        control_sent=m.counter("net.h2h.sent.kind.control").value,
        data_recv=m.counter("net.h2h.recv.kind.data").value,
        control_recv=m.counter("net.h2h.recv.kind.control").value,
    )


def link_transmissions(sim: Simulator) -> Dict[str, float]:
    """Per-link transmission counts, keyed by the link's string id."""
    out = {}
    for name, value in sim.metrics.counters("linktx.").items():
        out[name[len("linktx."):]] = value
    return out


@dataclass(frozen=True)
class CongestionReport:
    """How concentrated the load is on the source's access link."""

    source_access_tx: float
    max_other_access_tx: float
    mean_access_tx: float
    source_peak_queue: float

    @property
    def concentration(self) -> float:
        """Source access-link load relative to the busiest other access link."""
        if self.max_other_access_tx == 0:
            return float("inf") if self.source_access_tx > 0 else 1.0
        return self.source_access_tx / self.max_other_access_tx


def congestion_report(sim: Simulator, network: Network,
                      source: HostId) -> CongestionReport:
    """Compare the source's access-link load against everyone else's."""
    per_link = link_transmissions(sim)
    access_loads: Dict[HostId, float] = {}
    for host_id in network.hosts():
        link = network.access_link(host_id)
        access_loads[host_id] = per_link.get(str(link.link_id), 0.0)
    source_tx = access_loads.get(source, 0.0)
    others = [v for h, v in access_loads.items() if h != source]
    source_link = network.access_link(source)
    peak = 0.0
    for direction in (source_link.link_id.a, source_link.link_id.b):
        series = sim.metrics.series(f"linkq.{source_link.link_id}.{direction}")
        if series.points:
            peak = max(peak, series.max())
    return CongestionReport(
        source_access_tx=source_tx,
        max_other_access_tx=max(others) if others else 0.0,
        mean_access_tx=(sum(others) / len(others)) if others else 0.0,
        source_peak_queue=peak,
    )


def control_data_split(sim: Simulator) -> Tuple[float, float]:
    """(data msgs sent, control msgs sent) — the E6 measurement."""
    report = traffic_report(sim)
    return report.data_sent, report.control_sent
