"""Export traces and metrics for offline analysis.

Simulation runs can be dumped as JSON(L) so results feed into external
tooling (plotting, regression tracking) without re-running anything.
Everything here is stdlib-only.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..sim import Simulator

PathLike = Union[str, Path]


def _jsonable(value: Any) -> Any:
    """Coerce trace field values to something JSON can carry."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


def trace_to_jsonl(sim: Simulator, path: PathLike,
                   kind_prefix: str = "") -> int:
    """Write trace records (optionally filtered by kind prefix) as JSONL.

    Returns the number of records written.
    """
    count = 0
    with open(path, "w", encoding="utf-8") as out:
        for record in sim.trace.records(kind=kind_prefix or None):
            out.write(json.dumps({
                "time": record.time,
                "kind": record.kind,
                "source": record.source,
                **{k: _jsonable(v) for k, v in record.fields.items()},
            }))
            out.write("\n")
            count += 1
    return count


def metrics_snapshot(sim: Simulator) -> Dict[str, Any]:
    """All counters plus summary stats of every histogram."""
    snapshot: Dict[str, Any] = {"counters": sim.metrics.counters()}
    histograms = {}
    for name, histogram in sorted(sim.metrics._histograms.items()):
        if histogram.count == 0:
            continue
        histograms[name] = {
            "count": histogram.count,
            "mean": histogram.mean,
            "p50": histogram.quantile(0.5),
            "p99": histogram.quantile(0.99),
            "max": histogram.max,
        }
    snapshot["histograms"] = histograms
    return snapshot


def metrics_to_json(sim: Simulator, path: PathLike,
                    extra: Optional[Dict[str, Any]] = None) -> None:
    """Write the metrics snapshot (plus caller metadata) as one JSON file."""
    payload = metrics_snapshot(sim)
    if extra:
        payload["meta"] = _jsonable(extra)
    with open(path, "w", encoding="utf-8") as out:
        json.dump(payload, out, indent=2, sort_keys=True)
        out.write("\n")
