"""Cost accounting in the paper's metric (Section 5).

The paper approximates broadcast cost by counting **inter-cluster
host-to-host transmissions** — host-to-host messages whose path crossed
at least one expensive link.  The network layer stamps exactly this on
every delivered packet (the cost bit), and the metrics registry keeps
the counters, so cost reports are pure reads.

`CounterSnapshot` supports *marginal* measurements: snapshot, run a
stream, subtract — which is how steady-state per-message cost is
separated from one-time tree-construction cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..sim import Simulator

#: counter names used throughout (single source of truth)
EXPENSIVE_DATA = "net.h2h.recv.expensive.kind.data"
EXPENSIVE_CONTROL = "net.h2h.recv.expensive.kind.control"
ALL_DATA_RECV = "net.h2h.recv.kind.data"
ALL_CONTROL_RECV = "net.h2h.recv.kind.control"
ALL_SENT = "net.h2h.sent"
LINK_TX_TOTAL = "net.link_tx.total"
LINK_TX_EXPENSIVE = "net.link_tx.expensive"
LINK_TX_DATA = "net.link_tx.kind.data"


@dataclass(frozen=True)
class CostReport:
    """Cost of a broadcast run, in several granularities."""

    messages: int
    #: the paper's primary metric, per data message
    inter_cluster_data_per_msg: float
    inter_cluster_control_per_msg: float
    data_transmissions_per_msg: float
    control_transmissions_per_msg: float
    link_transmissions_per_msg: float
    expensive_link_transmissions_per_msg: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict form for serialization and reporting."""
        return {
            "messages": self.messages,
            "inter_cluster_data_per_msg": self.inter_cluster_data_per_msg,
            "inter_cluster_control_per_msg": self.inter_cluster_control_per_msg,
            "data_transmissions_per_msg": self.data_transmissions_per_msg,
            "control_transmissions_per_msg": self.control_transmissions_per_msg,
            "link_transmissions_per_msg": self.link_transmissions_per_msg,
            "expensive_link_transmissions_per_msg":
                self.expensive_link_transmissions_per_msg,
        }


class CounterSnapshot:
    """Snapshot of the cost-relevant counters at one instant."""

    NAMES = [EXPENSIVE_DATA, EXPENSIVE_CONTROL, ALL_DATA_RECV,
             ALL_CONTROL_RECV, ALL_SENT, LINK_TX_TOTAL, LINK_TX_EXPENSIVE,
             LINK_TX_DATA]

    def __init__(self, sim: Simulator) -> None:
        self.values = {name: sim.metrics.counter(name).value for name in self.NAMES}

    def delta(self, sim: Simulator) -> Dict[str, float]:
        """Counter increases since this snapshot."""
        return {name: sim.metrics.counter(name).value - self.values[name]
                for name in self.NAMES}


def cost_report(sim: Simulator, messages: int,
                since: CounterSnapshot = None) -> CostReport:
    """Build a cost report for ``messages`` data messages.

    With ``since``, only counter increases after the snapshot count —
    the marginal (steady-state) cost.
    """
    if messages <= 0:
        raise ValueError("messages must be positive")
    if since is not None:
        values = since.delta(sim)
    else:
        values = {name: sim.metrics.counter(name).value
                  for name in CounterSnapshot.NAMES}
    return CostReport(
        messages=messages,
        inter_cluster_data_per_msg=values[EXPENSIVE_DATA] / messages,
        inter_cluster_control_per_msg=values[EXPENSIVE_CONTROL] / messages,
        data_transmissions_per_msg=values[ALL_DATA_RECV] / messages,
        control_transmissions_per_msg=values[ALL_CONTROL_RECV] / messages,
        link_transmissions_per_msg=values[LINK_TX_TOTAL] / messages,
        expensive_link_transmissions_per_msg=values[LINK_TX_EXPENSIVE] / messages,
    )


def optimal_inter_cluster_cost(clusters: int) -> int:
    """The paper's lower bound: k−1 inter-cluster transmissions/message."""
    if clusters < 1:
        raise ValueError("clusters must be positive")
    return clusters - 1
