"""Measurement and reporting over simulation metrics and traces."""

from .cost import (
    CostReport,
    CounterSnapshot,
    cost_report,
    optimal_inter_cluster_cost,
)
from .delay import DelayStats, delay_stats, out_of_order_fraction, system_delay_stats
from .reliability import (
    RecoveryLocality,
    delivery_fraction,
    recovery_locality,
    time_to_full_delivery,
)
from .export import metrics_snapshot, metrics_to_json, trace_to_jsonl
from .report import Table
from .stats import Summary, aggregate_rows, summarize, t_critical_95
from .viz import render_cluster_view, render_parent_graph, render_topology
from .traffic import (
    CongestionReport,
    TrafficReport,
    congestion_report,
    control_data_split,
    link_transmissions,
    traffic_report,
)

__all__ = [
    "CongestionReport",
    "CostReport",
    "CounterSnapshot",
    "DelayStats",
    "RecoveryLocality",
    "Summary",
    "Table",
    "aggregate_rows",
    "TrafficReport",
    "congestion_report",
    "control_data_split",
    "cost_report",
    "delay_stats",
    "delivery_fraction",
    "link_transmissions",
    "metrics_snapshot",
    "metrics_to_json",
    "optimal_inter_cluster_cost",
    "out_of_order_fraction",
    "recovery_locality",
    "render_cluster_view",
    "render_parent_graph",
    "render_topology",
    "summarize",
    "system_delay_stats",
    "t_critical_95",
    "time_to_full_delivery",
    "trace_to_jsonl",
    "traffic_report",
]
