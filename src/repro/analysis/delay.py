"""Delivery-delay statistics (Section 5's delay comparison)."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List

from ..core.delivery import DeliveryRecord
from ..net import HostId


@dataclass(frozen=True)
class DelayStats:
    """Summary of end-to-end delivery delays."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    p999: float
    max: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict form for serialization and reporting."""
        return {"count": self.count, "mean": self.mean, "p50": self.p50,
                "p95": self.p95, "p99": self.p99, "p999": self.p999,
                "max": self.max}


def _quantile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return math.nan
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = q * (len(sorted_values) - 1)
    low = int(math.floor(pos))
    high = int(math.ceil(pos))
    low_val, high_val = sorted_values[low], sorted_values[high]
    if low == high or low_val == high_val:
        return low_val
    frac = pos - low
    return low_val + frac * (high_val - low_val)


def delay_stats(delays: Iterable[float]) -> DelayStats:
    """Summarize a collection of delays."""
    values = sorted(delays)
    if not values:
        return DelayStats(0, math.nan, math.nan, math.nan, math.nan,
                          math.nan, math.nan)
    return DelayStats(
        count=len(values),
        mean=sum(values) / len(values),
        p50=_quantile(values, 0.50),
        p95=_quantile(values, 0.95),
        p99=_quantile(values, 0.99),
        p999=_quantile(values, 0.999),
        max=values[-1],
    )


def system_delay_stats(
    records_by_host: Dict[HostId, List[DeliveryRecord]],
    source: HostId,
    since_seq: int = 0,
) -> DelayStats:
    """Delays across all non-source hosts (optionally only seq > since_seq).

    The source's own "deliveries" are instantaneous by construction and
    would bias the statistics, so they are excluded.
    """
    delays: List[float] = []
    for host_id, records in records_by_host.items():
        if host_id == source:
            continue
        delays.extend(r.delay for r in records if r.seq > since_seq)
    return delay_stats(delays)


def out_of_order_fraction(
    records_by_host: Dict[HostId, List[DeliveryRecord]],
    source: HostId,
) -> float:
    """Fraction of deliveries that arrived after a higher-numbered one.

    The paper deliberately tolerates out-of-order delivery (Section 1);
    this quantifies how often it actually happens.
    """
    total = 0
    late = 0
    for host_id, records in records_by_host.items():
        if host_id == source:
            continue
        by_time = sorted(records, key=lambda r: (r.delivered_at, r.seq))
        max_seq = 0
        for record in by_time:
            total += 1
            if record.seq < max_seq:
                late += 1
            max_seq = max(max_seq, record.seq)
    return late / total if total else math.nan
