"""Plain-text tables for benchmark output.

Benchmarks print paper-style rows; this keeps the formatting in one
place and out of the benchmark logic.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def _format_cell(cell: Cell) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "-"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        return f"{cell:.3f}".rstrip("0").rstrip(".") or "0"
    return str(cell)


class Table:
    """A fixed-header ASCII table."""

    def __init__(self, headers: Sequence[str], title: str = "") -> None:
        if not headers:
            raise ValueError("table needs at least one column")
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: Cell) -> "Table":
        """Append one row; cells must match the declared columns."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}")
        self.rows.append([_format_cell(c) for c in cells])
        return self

    def render(self) -> str:
        """Render as aligned plain text."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for idx, cell in enumerate(row):
                widths[idx] = max(widths[idx], len(cell))

        def line(cells: Iterable[str]) -> str:
            return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

        out = []
        if self.title:
            out.append(self.title)
        out.append(line(self.headers))
        out.append(line("-" * w for w in widths))
        out.extend(line(row) for row in self.rows)
        return "\n".join(out)

    def print(self) -> None:  # pragma: no cover - console convenience
        """Print the rendered table to stdout."""
        print("\n" + self.render() + "\n")
