"""Reliability measures (Sections 1 and 6).

The paper treats reliability as a *relative* measure: the degree to
which a protocol exploits the communication opportunities the network
offers.  Operationally we measure:

* **delivery fraction** — of all (host, message) pairs that should have
  been delivered, how many were;
* **redelivery locality** — who supplied messages that arrived as gap
  fills (a cluster neighbor, a host in the parent cluster, or a remote
  host); the paper argues the tree protocol recovers locally while the
  basic algorithm always recovers from the source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.delivery import DeliveryRecord
from ..net import HostId, Network


def delivery_fraction(
    records_by_host: Dict[HostId, List[DeliveryRecord]],
    n_messages: int,
    source: Optional[HostId] = None,
) -> float:
    """Fraction of (host, seq) pairs delivered, over non-source hosts."""
    if n_messages <= 0:
        raise ValueError("n_messages must be positive")
    hosts = [h for h in records_by_host if h != source]
    if not hosts:
        return 1.0
    delivered = 0
    for host_id in hosts:
        seqs = {r.seq for r in records_by_host[host_id]}
        delivered += sum(1 for seq in range(1, n_messages + 1) if seq in seqs)
    return delivered / (len(hosts) * n_messages)


@dataclass(frozen=True)
class RecoveryLocality:
    """Who supplied the gap-filled (recovered) deliveries."""

    total_recoveries: int
    from_same_cluster: int
    from_other_cluster: int
    from_source: int

    @property
    def local_fraction(self) -> float:
        """Share of recoveries supplied from the same cluster."""
        if self.total_recoveries == 0:
            return float("nan")
        return self.from_same_cluster / self.total_recoveries

    @property
    def source_fraction(self) -> float:
        """Share of recoveries supplied by the source itself."""
        if self.total_recoveries == 0:
            return float("nan")
        return self.from_source / self.total_recoveries


def recovery_locality(
    records_by_host: Dict[HostId, List[DeliveryRecord]],
    network: Network,
    source: HostId,
) -> RecoveryLocality:
    """Classify every gap-filled delivery by its supplier's location.

    Uses the network's ground-truth clusters (an oracle read — this is
    analysis, not protocol).
    """
    cluster_of: Dict[HostId, int] = {}
    for idx, cluster in enumerate(network.true_clusters()):
        for host_id in cluster:
            cluster_of[host_id] = idx
    total = same = other = from_src = 0
    for host_id, records in records_by_host.items():
        if host_id == source:
            continue
        for record in records:
            if not record.via_gapfill:
                continue
            total += 1
            if record.supplier == source:
                from_src += 1
            if cluster_of.get(record.supplier) == cluster_of.get(host_id):
                same += 1
            else:
                other += 1
    return RecoveryLocality(total_recoveries=total, from_same_cluster=same,
                            from_other_cluster=other, from_source=from_src)


def time_to_full_delivery(
    records_by_host: Dict[HostId, List[DeliveryRecord]],
    n_messages: int,
    source: Optional[HostId] = None,
) -> float:
    """Virtual time at which the last (host, seq) delivery happened.

    ``nan`` when some pair was never delivered.
    """
    latest = 0.0
    for host_id, records in records_by_host.items():
        if host_id == source:
            continue
        seqs = {r.seq: r for r in records}
        for seq in range(1, n_messages + 1):
            record = seqs.get(seq)
            if record is None:
                return float("nan")
            latest = max(latest, record.delivered_at)
    return latest
