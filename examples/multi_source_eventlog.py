#!/usr/bin/env python
"""Multiple sources + FIFO ordering: a distributed event log.

The paper studies single-source broadcast and prescribes the extension
(Section 2): "a multiple-source broadcast can be performed reliably by
running several identical single-source protocols."  This example runs
three publishing sites over one WAN, each with its own protocol
instance multiplexed over the hosts' single network attachments, with
two optional layers on top:

* per-source FIFO ordering (``FifoDeliveryAdapter``) so every
  subscriber sees each publisher's events in publication order;
* control-message piggybacking (Section 6), which pays off here because
  the parallel instances heartbeat the same neighbors.

Run:  python examples/multi_source_eventlog.py
"""

from collections import defaultdict

from repro import HostId, ProtocolConfig, Simulator, wan_of_lans
from repro.core import FifoDeliveryAdapter, MultiSourceBroadcastSystem

PUBLISHERS = ["h0.0", "h1.0", "h2.0"]
EVENTS_PER_PUBLISHER = 8


def main() -> None:
    sim = Simulator(seed=17)
    topology = wan_of_lans(sim, clusters=3, hosts_per_cluster=2,
                           backbone="line")
    sources = [HostId(name) for name in PUBLISHERS]

    # Per-(host, publisher) ordered event logs: each publisher's stream
    # runs through its own FIFO adapter so subscribers see publication
    # order per source.
    logs = defaultdict(list)
    adapters = {
        source: FifoDeliveryAdapter(
            lambda host, record, src=source: logs[(host, src)].append(
                record.content))
        for source in sources
    }

    config = ProtocolConfig.for_scale(6, enable_piggybacking=True)
    system = MultiSourceBroadcastSystem(
        topology, sources=sources, config=config,
        deliver_callback=lambda src, host, record:
            adapters[src].on_deliver(host, record)).start()

    for idx, source in enumerate(sources):
        for k in range(EVENTS_PER_PUBLISHER):
            sim.schedule_at(2.0 + k * 1.0 + idx * 0.3,
                            lambda s=source, k=k: system.broadcast(
                                s, f"{s}-event-{k + 1}"))

    ok = system.run_until_delivered(
        {s: EVENTS_PER_PUBLISHER for s in sources}, timeout=400.0)
    print(f"all {len(sources)} publishers' events delivered everywhere: {ok}")

    subscriber = HostId("h2.1")
    print(f"\nevent log at {subscriber} (per publisher, in FIFO order):")
    for source in sources:
        events = logs[(subscriber, source)]
        print(f"  from {source}: {len(events)} events, "
              f"first={events[0]}, last={events[-1]}")
        expected = [f"{source}-event-{k + 1}"
                    for k in range(EVENTS_PER_PUBLISHER)]
        assert events == expected, "FIFO violated!"

    bundles = sim.metrics.counter("piggyback.bundles").value
    saved = sim.metrics.counter("piggyback.bundled_messages").value - bundles
    print(f"\npiggybacking combined {saved:.0f} control packets away "
          f"({bundles:.0f} bundles sent)")


if __name__ == "__main__":
    main()
