#!/usr/bin/env python
"""Quickstart: reliable broadcast over three LAN clusters.

Builds the paper's canonical environment — clusters of hosts on cheap
LANs, joined by expensive long-haul trunks with nonprogrammable
servers — runs a 20-message broadcast stream, and prints what happened:
the host parent graph the protocol built, the cluster leaders it
elected, and the cost/delay it paid compared to the paper's k-1
optimum.

Run:  python examples/quickstart.py
"""

from repro import BroadcastSystem, Simulator, wan_of_lans
from repro.analysis import (
    CounterSnapshot,
    cost_report,
    optimal_inter_cluster_cost,
    render_parent_graph,
    system_delay_stats,
)

CLUSTERS = 3
HOSTS_PER_CLUSTER = 3
MESSAGES = 20


def main() -> None:
    sim = Simulator(seed=42)
    topology = wan_of_lans(sim, clusters=CLUSTERS,
                           hosts_per_cluster=HOSTS_PER_CLUSTER,
                           backbone="line")
    system = BroadcastSystem(topology).start()

    # Warm up: a few messages while the tree forms, then settle.
    system.broadcast_stream(5, interval=1.0, start_at=2.0)
    system.run_until_delivered(5, timeout=120.0)
    sim.run(until=sim.now + 20.0)
    snapshot = CounterSnapshot(sim)

    # The measured stream.
    system.broadcast_stream(MESSAGES, interval=1.0, start_at=sim.now + 1.0)
    ok = system.run_until_delivered(5 + MESSAGES, timeout=300.0)

    print(f"all {MESSAGES} messages delivered to every host: {ok}")
    print(f"\nhost parent graph at t={sim.now:.1f}:")
    print(render_parent_graph(system))

    cost = cost_report(sim, MESSAGES, since=snapshot)
    optimal = optimal_inter_cluster_cost(CLUSTERS)
    print(f"\ninter-cluster transmissions per message: "
          f"{cost.inter_cluster_data_per_msg:.2f} (paper optimum: {optimal})")

    delays = system_delay_stats(system.delivery_records(), system.source_id,
                                since_seq=5)
    print(f"delivery delay: mean {delays.mean*1000:.0f} ms, "
          f"p99 {delays.p99*1000:.0f} ms")


if __name__ == "__main__":
    main()
