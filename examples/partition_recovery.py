#!/usr/bin/env python
"""Partition recovery: shared responsibility for delivery (Section 1).

The paper's opening scenario: "the broadcasting host gets disconnected
from the network after delivering the message only to a portion of all
hosts."  With the basic algorithm the remaining hosts would wait for the
source to come back.  With the cluster-tree protocol the hosts that did
receive the messages propagate them onward.

This example cuts the *source itself* off mid-stream and shows the rest
of the network still converging, then compares against the basic
algorithm, which cannot.

Run:  python examples/partition_recovery.py
"""

from repro import (
    BasicBroadcastSystem,
    BroadcastSystem,
    ProtocolConfig,
    Simulator,
    wan_of_lans,
)
from repro.net import PartitionScheduler, cheap_spec, expensive_spec


def run(protocol: str) -> None:
    sim = Simulator(seed=21)
    # Lossy trunks: some copies vanish before the source disappears, so
    # somebody has to *recover* them afterwards.
    topology = wan_of_lans(sim, clusters=3, hosts_per_cluster=2,
                           backbone="line",
                           expensive=expensive_spec(loss_prob=0.3))
    if protocol == "tree":
        system = BroadcastSystem(topology, config=ProtocolConfig.for_scale(6))
    else:
        system = BasicBroadcastSystem(topology)
    system.start()

    # Ten messages early in the run...
    system.broadcast_stream(10, interval=0.5, start_at=2.0)
    # ...and at t=8 the source's access link dies for a long time.  By
    # then the source cluster has everything but remote clusters may not.
    scheduler = PartitionScheduler(sim, topology.network)
    scheduler.isolate([str(system.source_id)], start=8.0, end=500.0)

    others = [h for h in topology.hosts if h != system.source_id]
    delivered = system.run_until_delivered(10, timeout=300.0, hosts=others)

    reached = sum(1 for h in others
                  if system.hosts[h].deliveries.has_all(10))
    print(f"{protocol:6s}: source cut off at t=8; by t={sim.now:7.1f} "
          f"{reached}/{len(others)} other hosts have all 10 messages "
          f"({'converged' if delivered else 'STUCK'})")


def main() -> None:
    print(__doc__.strip().splitlines()[0])
    print()
    run("tree")
    run("basic")
    print("\nThe tree protocol's hosts share redelivery responsibility; the "
          "basic algorithm depends entirely on the (unreachable) source.")


if __name__ == "__main__":
    main()
