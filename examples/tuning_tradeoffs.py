#!/usr/bin/env python
"""The reliability <-> cost trade-off (paper Section 6).

Two clusters are partitioned almost permanently; the trunk comes up for
only 4 seconds out of every 30.  How many of the broadcast messages
make it across depends on how aggressively hosts exchange INFO sets and
probe for parents — and so does the control-message bill.

This example sweeps one knob (a global scale factor on all protocol
periods) and prints the resulting trade-off curve.

Run:  python examples/tuning_tradeoffs.py
"""

from repro import BroadcastSystem, ProtocolConfig, Simulator, wan_of_lans
from repro.analysis import Table, delivery_fraction, traffic_report
from repro.scenarios import BriefWindowSchedule, WindowSpec

HORIZON = 150.0
MESSAGES = 10
TRIALS = 5


def one_trial(factor: float, seed: int):
    sim = Simulator(seed=seed)
    topology = wan_of_lans(sim, clusters=2, hosts_per_cluster=2,
                           backbone="line")
    window = WindowSpec(period=30.0, width=4.0, first_open=20.0)
    BriefWindowSchedule(sim, topology, topology.backbone, window,
                        until=HORIZON)
    config = ProtocolConfig(data_size_bits=4000).scaled(factor)
    system = BroadcastSystem(topology, config=config).start()
    system.broadcast_stream(MESSAGES, interval=0.5, start_at=5.0)
    sim.run(until=HORIZON)
    cut_hosts = [h for h in topology.hosts if str(h).startswith("h1")]
    records = system.delivery_records()
    fraction = delivery_fraction({h: records[h] for h in cut_hosts}, MESSAGES)
    return fraction, traffic_report(sim).control_sent


def main() -> None:
    print(__doc__.strip().splitlines()[0])
    table = Table(["period scale", "messages across", "control msgs sent"],
                  title=f"\n{TRIALS}-trial averages, {HORIZON:.0f}s horizon, "
                        f"trunk up 4s/30s")
    for factor in (0.25, 0.5, 1.0, 2.0, 4.0):
        fractions, controls = zip(*(one_trial(factor, seed)
                                    for seed in range(TRIALS)))
        table.add_row(f"x{factor}",
                      f"{sum(fractions)/TRIALS:.0%}",
                      sum(controls) / TRIALS)
    print(table.render())
    print("\nFaster exchange (smaller scale) exploits the brief windows — "
          "at a proportionally larger control-traffic cost (Section 6).")


if __name__ == "__main__":
    main()
