#!/usr/bin/env python
"""Fuzz, shrink, replay: the robustness loop in one script.

The chaos fuzzer searches the fault space the paper's protocol claims
to survive: random topologies, workloads, and composed fault schedules
(crashes, flapping links, partitions, packet corruption) that all heal
by a horizon.  This walkthrough:

1. runs a small campaign against the *basic* algorithm, which really
   does lose messages under host crashes (a receiver's acked-then-lost
   messages are never retransmitted) — so the fuzzer has bugs to find;
2. delta-debugs the first failure down to a minimal fault schedule,
   usually a single fault event;
3. saves it as a JSON repro artifact and replays it byte-identically —
   same failure class, same SHA-256 delivery signature;
4. runs the same campaign against the paper's tree protocol, which
   comes out clean.

Run:  python examples/fuzz_and_replay.py
"""

import os
import tempfile

from repro.fuzz import (
    FuzzOptions,
    load_artifact,
    replay,
    run_campaign,
)

TRIALS = 4
SEED = 7

print("== 1. fuzz the basic algorithm "
      f"({TRIALS} trials, base seed {SEED}) ==")
with tempfile.TemporaryDirectory() as artifact_dir:
    summary = run_campaign(trials=TRIALS, base_seed=SEED,
                           options=FuzzOptions(protocol="basic"),
                           artifact_dir=artifact_dir)
    print(summary.render())

    failure = summary.failures[0]
    print()
    print("== 2. the first failure, shrunk to a minimal repro ==")
    print(f"original fault events : {failure.fault_events}")
    print(f"shrunk fault events   : {failure.shrunk_events} "
          f"({failure.shrink_ratio:.0%} of the schedule survives)")
    print(f"shrink evaluations    : {failure.shrink_evals}")

    print()
    print("== 3. replay the artifact byte-identically ==")
    artifact = load_artifact(failure.artifact)
    print(f"artifact : {os.path.basename(failure.artifact)}")
    print(f"expected : {artifact.expected_classification}, signature "
          f"{artifact.expected_signature[:16]}...")
    outcome, reproduced = replay(artifact)
    print(f"replayed : {outcome.classification}, signature "
          f"{outcome.signature[:16]}...")
    print(f"reproduced exactly: {reproduced}")

    print()
    print("== what the property checkers observed ==")
    print(f"delivered fraction      : {outcome.delivered_fraction:.3f}")
    print(f"undelivered (host, seq) : {list(outcome.missing)}")
    print("stable invariant "
          f"violations : {list(outcome.violations) or 'none'}")

print()
print("== 4. the same campaign against the paper's protocol ==")
tree = run_campaign(trials=TRIALS, base_seed=SEED, shrink=False)
print(tree.render())
print(f"tree protocol clean on all trials: {tree.clean == TRIALS}")
