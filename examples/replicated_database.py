#!/usr/bin/env python
"""Replicated database update propagation — the paper's motivating app.

Section 1 motivates the protocol with "management of highly available
replicated databases": every site keeps a full copy, updates are
broadcast, and approaches like DataPatch/log transformation tolerate
out-of-order installation — which is exactly the ordering guarantee the
protocol gives (eventual, not FIFO).

This example runs a small key-value database replicated across three
sites.  Updates are *commutative per key* (last-writer-wins by update
id), so replicas converge no matter the delivery order.  Mid-stream,
one site is partitioned away; after the repair, the protocol's gap
filling brings its replica back in sync without any help from the
application.

Run:  python examples/replicated_database.py
"""

from dataclasses import dataclass
from typing import Dict, Tuple

from repro import BroadcastSystem, HostId, ProtocolConfig, Simulator, wan_of_lans
from repro.net import PartitionScheduler, host_group


@dataclass(frozen=True)
class Update:
    """One database write: set key := value, stamped with an update id."""

    update_id: int
    key: str
    value: int


class Replica:
    """A last-writer-wins key-value store fed by broadcast deliveries."""

    def __init__(self) -> None:
        self.data: Dict[str, Tuple[int, int]] = {}  # key -> (update_id, value)
        self.applied = 0

    def apply(self, update: Update) -> None:
        self.applied += 1
        current = self.data.get(update.key)
        if current is None or update.update_id > current[0]:
            self.data[update.key] = (update.update_id, update.value)

    def snapshot(self) -> Dict[str, int]:
        return {key: value for key, (_, value) in sorted(self.data.items())}


def main() -> None:
    sim = Simulator(seed=7)
    topology = wan_of_lans(sim, clusters=3, hosts_per_cluster=2,
                           backbone="line")
    replicas: Dict[HostId, Replica] = {h: Replica() for h in topology.hosts}

    def on_deliver(host, record):
        replicas[host].apply(record.content)

    system = BroadcastSystem(topology, config=ProtocolConfig.for_scale(6),
                             deliver_callback=on_deliver).start()

    # The primary site (the source) issues 30 updates over 30 seconds...
    keys = ["alpha", "beta", "gamma"]
    for k in range(30):
        update = Update(update_id=k + 1, key=keys[k % len(keys)], value=k * 10)
        sim.schedule_at(2.0 + k, lambda u=update: system.source.broadcast(u))

    # ...while site 2 drops off the network between t=10 and t=35.
    scheduler = PartitionScheduler(sim, topology.network)
    cut_group = host_group(topology.network, topology.clusters[2]) + ["s2"]
    scheduler.isolate(cut_group, start=10.0, end=35.0)

    sim.run(until=34.0)
    behind = topology.clusters[2][0]
    print(f"during the partition, {behind} has applied "
          f"{replicas[behind].applied}/30 updates")

    ok = system.run_until_delivered(30, timeout=300.0)
    print(f"\nafter the repair, all updates delivered everywhere: {ok}")

    reference = replicas[system.source_id].snapshot()
    print(f"primary replica state: {reference}")
    divergent = [str(h) for h, r in replicas.items() if r.snapshot() != reference]
    print(f"replicas diverging from the primary: {divergent or 'none'}")

    out_of_order = sum(system.hosts[h].deliveries.out_of_order_count()
                       for h in topology.hosts)
    print(f"updates installed out of order (allowed by design): {out_of_order}")


if __name__ == "__main__":
    main()
