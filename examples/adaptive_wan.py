#!/usr/bin/env python
"""Adapting to a changing WAN: link churn, rerouting, re-parenting.

The paper's protocol makes no assumptions about which links are up; it
relies on adaptive routing below (communication transitivity) and its
own attachment procedure above.  This example runs a 4-cluster ring
whose backbone trunks flap randomly, with the full distance-vector
routing engine (not the instant global oracle) underneath, and reports
how the broadcast fared.

Run:  python examples/adaptive_wan.py
"""

from repro import BroadcastSystem, ProtocolConfig, Simulator, wan_of_lans
from repro.analysis import system_delay_stats, time_to_full_delivery
from repro.net import DistanceVectorEngine, LinkFlapper

MESSAGES = 40


def main() -> None:
    sim = Simulator(seed=13)
    topology = wan_of_lans(sim, clusters=4, hosts_per_cluster=2,
                           backbone="ring")
    # Swap in the message-driven distance-vector routing substrate: the
    # network now *discovers* reroutes a few exchange rounds after each
    # failure, exactly the "given sufficient time" transitivity of §2.
    engine = DistanceVectorEngine(sim, topology.network, period=0.5,
                                  max_age=3.0)
    topology.network.use_routing(engine)

    flapper = LinkFlapper(sim, topology.network, topology.backbone,
                          mean_up=25.0, mean_down=5.0).start()
    system = BroadcastSystem(topology,
                             config=ProtocolConfig.for_scale(8)).start()
    system.broadcast_stream(MESSAGES, interval=1.0, start_at=5.0)
    ok = system.run_until_delivered(MESSAGES, timeout=600.0)
    flapper.stop()

    downs = sim.trace.count("link.down")
    reattaches = sim.metrics.counter("proto.attach.success").value
    parent_timeouts = sim.metrics.counter("proto.parent.timeouts").value
    gapfills = sim.metrics.counter("proto.gapfill.sent").value
    records = system.delivery_records()
    delays = system_delay_stats(records, system.source_id)
    done_at = time_to_full_delivery(records, MESSAGES, system.source_id)

    print(f"backbone failures injected : {downs}")
    print(f"successful re-attachments  : {reattaches:.0f}")
    print(f"parent timeouts observed   : {parent_timeouts:.0f}")
    print(f"gap fills sent             : {gapfills:.0f}")
    print(f"all {MESSAGES} messages delivered : {ok} "
          f"(last delivery at t={done_at:.1f}s)")
    print(f"delivery delay             : mean {delays.mean:.2f}s, "
          f"p99 {delays.p99:.2f}s")


if __name__ == "__main__":
    main()
