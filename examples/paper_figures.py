#!/usr/bin/env python
"""The paper's three figures, run live with narration.

* **Figure 3.1** — why host-level broadcast cannot match in-network
  multicast: count link traversals on the diamond topology.
* **Figure 3.2** — the host parent graph induces a cluster tree, with
  cluster C genuinely choosing between parent clusters C' and C''.
* **Figure 4.1** — non-neighbor gap filling: the source isolated, hosts
  i and j holding {1,3} and {2,3}, reconciling each other.

Run:  python examples/paper_figures.py
"""

from repro import BroadcastSystem, HostId, ProtocolConfig, Simulator
from repro.analysis import CounterSnapshot, render_parent_graph, render_topology
from repro.net import trace_route
from repro.scenarios import figure_3_1, figure_3_2, figure_4_1
from repro.verify import check_induces_cluster_tree, run_to_quiescence


def banner(text: str) -> None:
    print("\n" + "=" * 66)
    print(text)
    print("=" * 66)


def demo_figure_3_1() -> None:
    banner("Figure 3.1 — inherent suboptimality of host-level broadcast")
    sim = Simulator(seed=7)
    built = figure_3_1(sim)
    print(render_topology(built.network))
    lower_bound = len(built.network.links)
    system = BroadcastSystem(built, config=ProtocolConfig()).start()
    system.broadcast_stream(5, interval=1.0, start_at=2.0)
    system.run_until_delivered(5, timeout=60.0)
    sim.run(until=sim.now + 20.0)
    snapshot = CounterSnapshot(sim)
    system.broadcast_stream(10, interval=1.0, start_at=sim.now + 1.0)
    system.run_until_delivered(15, timeout=120.0)
    per_msg = snapshot.delta(sim)["net.link_tx.kind.data"] / 10
    print(f"\nserver-multicast lower bound : {lower_bound} link traversals/msg")
    print(f"this protocol (host-level)   : {per_msg:.1f} link traversals/msg")
    print("the s1<->s4 trunk is crossed twice per message — unavoidable "
          "without programmable servers (paper, Section 3)")


def demo_figure_3_2() -> None:
    banner("Figure 3.2 — the parent graph induces a cluster tree")
    sim = Simulator(seed=10)
    built = figure_3_2(sim)
    system = BroadcastSystem(
        built, config=ProtocolConfig.for_scale(len(built.hosts))).start()
    system.broadcast_stream(10, interval=1.0, start_at=2.0)
    system.run_until_delivered(10, timeout=120.0)
    run_to_quiescence(system, stable_window=15.0, timeout=200.0)
    print("quiescent host parent graph:")
    print(render_parent_graph(system))
    violations = check_induces_cluster_tree(system)
    print(f"\ninduces-a-cluster-tree check: "
          f"{'PASS' if not violations else violations}")
    c_leader = [h for h in built.clusters[3]
                if system.hosts[h].is_cluster_leader][0]
    parent = system.hosts[c_leader].parent
    names = {0: "the source cluster", 1: "C' (cluster 1)", 2: "C'' (cluster 2)"}
    which = names[int(str(parent)[1])]
    route = trace_route(built.network, c_leader, parent)
    print(f"cluster C's leader {c_leader} chose its parent {parent} in "
          f"{which}; data reaches it via {' -> '.join(route.nodes)}")


def demo_figure_4_1() -> None:
    banner("Figure 4.1 — non-neighbor gap filling with the source isolated")
    sim = Simulator(seed=8)
    built = figure_4_1(sim)
    config = ProtocolConfig(gapfill_nonneighbor_period=5.0,
                            info_inter_period=3.0,
                            parent_timeout_inter=10_000.0)
    system = BroadcastSystem(built, source=HostId("s"), config=config).start()
    s = system.source
    host_i, host_j = system.hosts[HostId("i")], system.hosts[HostId("j")]

    def seed_state():
        for _ in range(3):
            s.broadcast()
        for host in (host_i, host_j):
            host.parent = s.me
            host._arm_parent_timer()
            s.children.add(host.me)
        host_i._on_data(s.store[1], s.me)
        host_i._on_data(s.store[3], s.me)
        host_j._on_data(s.store[2], s.me)
        host_j._on_data(s.store[3], s.me)

    sim.schedule_at(0.5, seed_state)
    sim.schedule_at(1.0, lambda: (
        built.network.set_link_state("ss", "si", up=False),
        built.network.set_link_state("ss", "sj", up=False)))
    sim.run(until=1.1)
    print(f"after the partition: i holds {sorted(host_i.info)}, "
          f"j holds {sorted(host_j.info)}; s is unreachable")
    print(f"route i->s: {trace_route(built.network, HostId('i'), HostId('s')).status}; "
          f"route i->j: {trace_route(built.network, HostId('i'), HostId('j')).status}")
    sim.run(until=60.0)
    print(f"after non-neighbor gap filling: i holds {sorted(host_i.info)} "
          f"(seq 2 from {host_i.deliveries.get(2).supplier}), "
          f"j holds {sorted(host_j.info)} "
          f"(seq 1 from {host_j.deliveries.get(1).supplier})")
    print("neither host re-attached — their INFO sets were incomparable, "
          "exactly the paper's point (Section 4.4)")


if __name__ == "__main__":
    demo_figure_3_1()
    demo_figure_3_2()
    demo_figure_4_1()
